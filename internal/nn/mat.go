// Package nn implements the neural-network substrate of LearnedSQLGen from
// scratch on the stdlib: dense matrices, an embedding layer, multi-layer
// LSTMs with full backpropagation-through-time, linear heads, masked
// softmax, inverted dropout, MLPs and the Adam optimizer. Gradients are
// verified against finite differences in the test suite.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zero matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns a view of row i.
func (m *Mat) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Zero clears the matrix in place.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone deep-copies the matrix.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// XavierInit fills the matrix with Glorot-uniform noise.
func (m *Mat) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// MulVec computes y = M·x (x length Cols, y length Rows).
func (m *Mat) MulVec(x, y []float64) {
	// Invariant, not an input error: every caller sizes its vectors from
	// the same network dimensions this matrix was built with, so a
	// mismatch is a wiring bug in the layer code — panic, don't return.
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("nn: MulVec shape mismatch: %dx%d · %d -> %d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, xv := range x {
			s += row[j] * xv
		}
		y[i] = s
	}
}

// MulVecT computes y = Mᵀ·x (x length Rows, y length Cols), accumulating
// into y.
func (m *Mat) MulVecT(x, y []float64) {
	// Invariant: see MulVec.
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("nn: MulVecT shape mismatch: %dx%dᵀ · %d -> %d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		row := m.Row(i)
		for j := range row {
			y[j] += row[j] * xv
		}
	}
}

// AddOuter accumulates M += a·bᵀ (a length Rows, b length Cols).
func (m *Mat) AddOuter(a, b []float64) {
	// Invariant: see MulVec.
	if len(a) != m.Rows || len(b) != m.Cols {
		panic("nn: AddOuter shape mismatch")
	}
	for i, av := range a {
		if av == 0 {
			continue
		}
		row := m.Row(i)
		for j, bv := range b {
			row[j] += av * bv
		}
	}
}

// Param couples a weight matrix with its gradient accumulator and Adam
// moments.
type Param struct {
	Name string
	Val  *Mat
	Grad *Mat
	m, v []float64
}

// NewParam allocates a parameter with Xavier-initialized weights.
func NewParam(name string, rows, cols int, rng *rand.Rand) *Param {
	p := &Param{Name: name, Val: NewMat(rows, cols), Grad: NewMat(rows, cols)}
	p.Val.XavierInit(rng)
	return p
}

// NewZeroParam allocates a zero-initialized parameter (biases).
func NewZeroParam(name string, rows, cols int) *Param {
	return &Param{Name: name, Val: NewMat(rows, cols), Grad: NewMat(rows, cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// CopyFrom copies weights (not gradients) from q.
func (p *Param) CopyFrom(q *Param) { copy(p.Val.Data, q.Val.Data) }

// Adam is the Adam optimizer over a fixed parameter set.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	Clip  float64 // global gradient-norm clip; 0 disables
	t     int
}

// NewAdam returns Adam with the usual defaults and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5}
}

// Step applies one update to every parameter and zeroes the gradients.
func (a *Adam) Step(params []*Param) {
	a.t++
	if a.Clip > 0 {
		var norm float64
		for _, p := range params {
			for _, g := range p.Grad.Data {
				norm += g * g
			}
		}
		norm = math.Sqrt(norm)
		if norm > a.Clip {
			scale := a.Clip / norm
			for _, p := range params {
				for i := range p.Grad.Data {
					p.Grad.Data[i] *= scale
				}
			}
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.m == nil {
			p.m = make([]float64, len(p.Val.Data))
			p.v = make([]float64, len(p.Val.Data))
		}
		for i, g := range p.Grad.Data {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mh := p.m[i] / bc1
			vh := p.v[i] / bc2
			p.Val.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.Grad.Zero()
	}
}
