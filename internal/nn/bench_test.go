package nn

import (
	"math/rand"
	"testing"
)

// benchNet mirrors the actor dimensions used on the micro benchmarks:
// vocabulary of a few hundred tokens, 32-dim embedding, 30 hidden units.
func benchNet() *SeqNet {
	rng := rand.New(rand.NewSource(1))
	return NewSeqNet("bench", 300, 32, 30, 300, 0.3, rng)
}

// BenchmarkActorStep measures one masked policy step — the innermost unit
// of rollout work. Allocations per op are the regression guard for the
// workspace step kernels.
func BenchmarkActorStep(b *testing.B) {
	net := benchNet()
	valid := []int{3, 17, 42, 99, 120, 200, 250}
	rng := rand.New(rand.NewSource(2))
	ws := NewWorkspace(nil)
	st := ws.Pool().GetState(net.Hidden)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st.Len() >= 64 { // bound the BPTT tape like a real episode
			ws.Recycle(st)
			st = ws.Pool().GetState(net.Hidden)
		}
		net.StepMaskedInto(ws, st, i%300, valid, true, rng)
	}
}

// BenchmarkActorStepInference measures the same step without training
// bookkeeping (no dropout, no tape) — the Generate path.
func BenchmarkActorStepInference(b *testing.B) {
	net := benchNet()
	valid := []int{3, 17, 42, 99, 120, 200, 250}
	ws := NewWorkspace(nil)
	st := ws.Pool().GetState(net.Hidden)
	steps := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if steps >= 64 { // inference records no tape; count steps manually
			ws.Recycle(st)
			st = ws.Pool().GetState(net.Hidden)
			steps = 0
		}
		net.StepMaskedInto(ws, st, i%300, valid, false, nil)
		steps++
	}
}

// BenchmarkActorStepInferenceQuantized is BenchmarkActorStepInference on
// the int8 fused kernels (Workspace.SetQuantized). The ratio of the two
// is the quantized speedup recorded in BENCH_nn.json.
func BenchmarkActorStepInferenceQuantized(b *testing.B) {
	net := benchNet()
	valid := []int{3, 17, 42, 99, 120, 200, 250}
	ws := NewWorkspace(nil)
	ws.SetQuantized(QuantizeSeqNet(net))
	st := ws.Pool().GetState(net.Hidden)
	steps := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if steps >= 64 {
			ws.Recycle(st)
			st = ws.Pool().GetState(net.Hidden)
			steps = 0
		}
		net.StepMaskedInto(ws, st, i%300, valid, false, nil)
		steps++
	}
}

// BenchmarkSeqNetBackward measures full BPTT over a 32-step episode.
func BenchmarkSeqNetBackward(b *testing.B) {
	net := benchNet()
	rng := rand.New(rand.NewSource(3))
	const T = 32
	dHead := make([][]float64, T)
	d := make([]float64, 300)
	for i := range d {
		d[i] = rng.NormFloat64() * 0.01
	}
	for t := range dHead {
		dHead[t] = d
	}
	ws := NewWorkspace(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := ws.Pool().GetState(net.Hidden)
		for t := 0; t < T; t++ {
			net.StepInto(ws, st, t%300, true, rng)
		}
		net.BackwardInto(ws, st, dHead)
		ws.Recycle(st)
	}
}
