package nn

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func testNet(t *testing.T, seed int64) *SeqNet {
	t.Helper()
	return NewSeqNet("m", 7, 5, 4, 7, 0, rand.New(rand.NewSource(seed)))
}

func saveBytes(t *testing.T, params []*Param) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCorruptionMatrix is the checkpoint corruption matrix at the format
// level: truncation at every byte boundary, a bit flip at every byte, and
// a stale version header must each be detected as ErrCorrupt — never
// loaded silently, never a panic.
func TestCorruptionMatrix(t *testing.T) {
	src := testNet(t, 1)
	data := saveBytes(t, src.Params())

	t.Run("truncated", func(t *testing.T) {
		// Every prefix shorter than the full file must fail: a kill -9
		// mid-write can stop anywhere.
		for n := 0; n < len(data); n += 7 {
			dst := testNet(t, 2)
			err := LoadParams(bytes.NewReader(data[:n]), dst.Params())
			if err == nil {
				t.Fatalf("truncation at %d/%d bytes loaded successfully", n, len(data))
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", n, err)
			}
		}
	})

	t.Run("bit-flip", func(t *testing.T) {
		// Flip one bit in every byte past the magic. Header corruption, CRC
		// field corruption and payload corruption must all be caught.
		for i := len(magicV2); i < len(data); i += 11 {
			mut := append([]byte(nil), data...)
			mut[i] ^= 0x10
			dst := testNet(t, 3)
			err := LoadParams(bytes.NewReader(mut), dst.Params())
			if err == nil {
				t.Fatalf("bit flip at byte %d loaded successfully", i)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip at byte %d: error %v does not wrap ErrCorrupt", i, err)
			}
		}
	})

	t.Run("stale-version", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(mut[8:12], 99)
		dst := testNet(t, 4)
		err := LoadParams(bytes.NewReader(mut), dst.Params())
		if err == nil || !errors.Is(err, ErrCorrupt) {
			t.Fatalf("version 99 header: err=%v, want ErrCorrupt", err)
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[1] = 'X'
		dst := testNet(t, 5)
		if err := LoadParams(bytes.NewReader(mut), dst.Params()); err == nil {
			t.Fatal("corrupted magic loaded successfully")
		}
	})
}

// TestLegacyV1Loads certifies backward compatibility: a checkpoint in the
// pre-CRC gob format (written by older builds) still loads.
func TestLegacyV1Loads(t *testing.T) {
	src := testNet(t, 6)
	cp := checkpointV1{Magic: checkpointMagicV1, Version: checkpointVersionV1}
	for _, p := range src.Params() {
		cp.Params = append(cp.Params, paramBlob{
			Name: p.Name, Rows: p.Val.Rows, Cols: p.Val.Cols, Data: p.Val.Data,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		t.Fatal(err)
	}
	dst := testNet(t, 7)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), dst.Params()); err != nil {
		t.Fatalf("legacy v1 checkpoint failed to load: %v", err)
	}
	if ChecksumParams(dst.Params()) != ChecksumParams(src.Params()) {
		t.Fatal("legacy load did not reproduce the weights")
	}
}

func TestV2RoundTripChecksum(t *testing.T) {
	src := testNet(t, 8)
	data := saveBytes(t, src.Params())
	dst := testNet(t, 9)
	if ChecksumParams(dst.Params()) == ChecksumParams(src.Params()) {
		t.Fatal("distinct seeds produced identical weights (checksum too weak?)")
	}
	if err := LoadParams(bytes.NewReader(data), dst.Params()); err != nil {
		t.Fatal(err)
	}
	if ChecksumParams(dst.Params()) != ChecksumParams(src.Params()) {
		t.Fatal("round trip did not reproduce the weights byte-exactly")
	}
}

func TestHealthHelpers(t *testing.T) {
	net := testNet(t, 10)
	params := net.Params()
	if !ParamsFinite(params) {
		t.Fatal("fresh network reported non-finite")
	}
	if got := GradNorm(params); got != 0 {
		t.Fatalf("zero gradients have norm %v", got)
	}
	params[0].Grad.Data[3] = 4
	params[1].Grad.Data[0] = 3
	if got := GradNorm(params); math.Abs(got-5) > 1e-12 {
		t.Fatalf("GradNorm = %v, want 5", got)
	}
	params[0].Grad.Data[1] = math.NaN()
	if got := GradNorm(params); !math.IsNaN(got) {
		t.Fatalf("NaN gradient produced finite norm %v", got)
	}
	ZeroGrads(params)
	if got := GradNorm(params); got != 0 {
		t.Fatalf("ZeroGrads left norm %v", got)
	}

	// Snapshot → poison → restore must be byte-exact.
	want := ChecksumParams(params)
	snap := SnapshotParams(nil, params)
	params[0].Val.Data[0] = math.Inf(1)
	if ParamsFinite(params) {
		t.Fatal("Inf weight reported finite")
	}
	if !RestoreParams(params, snap) {
		t.Fatal("RestoreParams rejected its own snapshot")
	}
	if got := ChecksumParams(params); got != want {
		t.Fatal("restore did not reproduce the snapshot")
	}
	if RestoreParams(params, snap[:1]) {
		t.Fatal("RestoreParams accepted a mismatched snapshot")
	}
}
