package nn

import (
	"math"
	"math/rand"
)

// LSTM is one recurrent layer with input size In and Hidden units. Gate
// weights are packed 4H×· in the order input, forget, output, candidate.
type LSTM struct {
	In, Hidden int
	Wx, Wh, B  *Param
}

// NewLSTM allocates a layer. The forget-gate bias is initialized to 1, a
// standard trick for stable early training.
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		Wx: NewParam(name+".Wx", 4*hidden, in, rng),
		Wh: NewParam(name+".Wh", 4*hidden, hidden, rng),
		B:  NewZeroParam(name+".B", 4*hidden, 1),
	}
	for i := hidden; i < 2*hidden; i++ { // forget gate slice
		l.B.Val.Data[i] = 1
	}
	return l
}

// Params lists trainable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// LSTMCache stores one step's activations for BPTT.
type LSTMCache struct {
	X, HPrev, CPrev []float64
	I, F, O, G      []float64
	C, H, TanhC     []float64
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Step runs one forward step, returning the new hidden/cell state and the
// cache for backward.
func (l *LSTM) Step(x, hPrev, cPrev []float64) ([]float64, []float64, *LSTMCache) {
	H := l.Hidden
	pre := make([]float64, 4*H)
	l.Wx.Val.MulVec(x, pre)
	tmp := make([]float64, 4*H)
	l.Wh.Val.MulVec(hPrev, tmp)
	for i := range pre {
		pre[i] += tmp[i] + l.B.Val.Data[i]
	}
	cache := &LSTMCache{
		X:     append([]float64(nil), x...),
		HPrev: append([]float64(nil), hPrev...),
		CPrev: append([]float64(nil), cPrev...),
		I:     make([]float64, H), F: make([]float64, H),
		O: make([]float64, H), G: make([]float64, H),
		C: make([]float64, H), H: make([]float64, H), TanhC: make([]float64, H),
	}
	for j := 0; j < H; j++ {
		cache.I[j] = sigmoid(pre[j])
		cache.F[j] = sigmoid(pre[H+j])
		cache.O[j] = sigmoid(pre[2*H+j])
		cache.G[j] = math.Tanh(pre[3*H+j])
		cache.C[j] = cache.F[j]*cPrev[j] + cache.I[j]*cache.G[j]
		cache.TanhC[j] = math.Tanh(cache.C[j])
		cache.H[j] = cache.O[j] * cache.TanhC[j]
	}
	return cache.H, cache.C, cache
}

// Backward propagates (dH, dC) through one cached step, accumulating
// parameter gradients and returning (dX, dHPrev, dCPrev).
func (l *LSTM) Backward(cache *LSTMCache, dH, dC []float64) (dx, dhPrev, dcPrev []float64) {
	H := l.Hidden
	dPre := make([]float64, 4*H)
	dcPrev = make([]float64, H)
	for j := 0; j < H; j++ {
		dO := dH[j] * cache.TanhC[j]
		dCj := dC[j] + dH[j]*cache.O[j]*(1-cache.TanhC[j]*cache.TanhC[j])
		dI := dCj * cache.G[j]
		dF := dCj * cache.CPrev[j]
		dG := dCj * cache.I[j]
		dcPrev[j] = dCj * cache.F[j]

		dPre[j] = dI * cache.I[j] * (1 - cache.I[j])
		dPre[H+j] = dF * cache.F[j] * (1 - cache.F[j])
		dPre[2*H+j] = dO * cache.O[j] * (1 - cache.O[j])
		dPre[3*H+j] = dG * (1 - cache.G[j]*cache.G[j])
	}
	l.Wx.Grad.AddOuter(dPre, cache.X)
	l.Wh.Grad.AddOuter(dPre, cache.HPrev)
	for i, d := range dPre {
		l.B.Grad.Data[i] += d
	}
	dx = make([]float64, l.In)
	l.Wx.Val.MulVecT(dPre, dx)
	dhPrev = make([]float64, H)
	l.Wh.Val.MulVecT(dPre, dhPrev)
	return dx, dhPrev, dcPrev
}
