package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// LSTM is one recurrent layer with input size In and Hidden units. Gate
// weights are packed 4H×· in the order input, forget, output, candidate.
type LSTM struct {
	In, Hidden int
	Wx, Wh, B  *Param
}

// NewLSTM allocates a layer. The forget-gate bias is initialized to 1, a
// standard trick for stable early training.
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		Wx: NewParam(name+".Wx", 4*hidden, in, rng),
		Wh: NewParam(name+".Wh", 4*hidden, hidden, rng),
		B:  NewZeroParam(name+".B", 4*hidden, 1),
	}
	for i := hidden; i < 2*hidden; i++ { // forget gate slice
		l.B.Val.Data[i] = 1
	}
	return l
}

// Params lists trainable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// LSTMCache stores one step's activations for BPTT. Its buffers are
// reusable: StepInto overwrites every field, so caches cycle through a
// CachePool without clearing.
type LSTMCache struct {
	X, HPrev, CPrev []float64
	I, F, O, G      []float64
	TanhC           []float64
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// StepInto runs one forward step in place: h and c (length Hidden) are
// updated from their previous values, with gate scratch drawn from ws.
// x is only read, so it may be a view into shared memory (an embedding
// row, the previous layer's hidden state). With a non-nil cache the step's
// activations — including copies of x and the previous state — are
// captured into the cache's reusable buffers for BackwardInto; inference
// passes nil and skips all BPTT bookkeeping.
func (l *LSTM) StepInto(ws *Workspace, x, h, c []float64, cache *LSTMCache) {
	H := l.Hidden
	// Invariant, not an input error: SeqNet allocates every state vector
	// from this layer's own In/Hidden, so a mismatch is a wiring bug in
	// the network code — panic, don't return (see Mat.MulVec).
	if len(x) != l.In || len(h) != H || len(c) != H {
		panic(fmt.Sprintf("nn: LSTM.StepInto shapes x=%d h=%d c=%d, want in=%d hidden=%d",
			len(x), len(h), len(c), l.In, H))
	}
	ws.gates = grow(ws.gates, 4*H)
	ws.hprod = grow(ws.hprod, 4*H)
	pre, tmp := ws.gates, ws.hprod
	l.Wx.Val.MulVec(x, pre)
	l.Wh.Val.MulVec(h, tmp)
	for i := range pre {
		pre[i] += tmp[i] + l.B.Val.Data[i]
	}
	// The gate pre-activations above read all of h and c, so the in-place
	// state update below is safe: index j only reads its own old value.
	if cache == nil {
		for j := 0; j < H; j++ {
			i := sigmoid(pre[j])
			f := sigmoid(pre[H+j])
			o := sigmoid(pre[2*H+j])
			g := math.Tanh(pre[3*H+j])
			cn := f*c[j] + i*g
			c[j] = cn
			h[j] = o * math.Tanh(cn)
		}
		return
	}
	cache.X = growCopy(cache.X, x)
	cache.HPrev = growCopy(cache.HPrev, h)
	cache.CPrev = growCopy(cache.CPrev, c)
	cache.I = grow(cache.I, H)
	cache.F = grow(cache.F, H)
	cache.O = grow(cache.O, H)
	cache.G = grow(cache.G, H)
	cache.TanhC = grow(cache.TanhC, H)
	for j := 0; j < H; j++ {
		i := sigmoid(pre[j])
		f := sigmoid(pre[H+j])
		o := sigmoid(pre[2*H+j])
		g := math.Tanh(pre[3*H+j])
		cache.I[j], cache.F[j], cache.O[j], cache.G[j] = i, f, o, g
		cn := f*c[j] + i*g
		tc := math.Tanh(cn)
		cache.TanhC[j] = tc
		c[j] = cn
		h[j] = o * tc
	}
}

// BackwardInto propagates (dH, dC) through a cached step, accumulating
// parameter gradients and writing the input and previous-state gradients
// into the caller-owned dx (length In), dhPrev and dcPrev (length Hidden)
// buffers, which are overwritten. Aliasing dhPrev with dH and dcPrev with
// dC is allowed — the running-gradient buffers of BPTT update in place.
func (l *LSTM) BackwardInto(ws *Workspace, cache *LSTMCache, dH, dC, dx, dhPrev, dcPrev []float64) {
	H := l.Hidden
	// Invariant: see StepInto.
	if len(dH) != H || len(dC) != H || len(dx) != l.In || len(dhPrev) != H || len(dcPrev) != H {
		panic(fmt.Sprintf("nn: LSTM.BackwardInto shapes dH=%d dC=%d dx=%d dhPrev=%d dcPrev=%d, want in=%d hidden=%d",
			len(dH), len(dC), len(dx), len(dhPrev), len(dcPrev), l.In, H))
	}
	ws.dpre = grow(ws.dpre, 4*H)
	dPre := ws.dpre
	for j := 0; j < H; j++ {
		dO := dH[j] * cache.TanhC[j]
		dCj := dC[j] + dH[j]*cache.O[j]*(1-cache.TanhC[j]*cache.TanhC[j])
		dI := dCj * cache.G[j]
		dF := dCj * cache.CPrev[j]
		dG := dCj * cache.I[j]
		dcPrev[j] = dCj * cache.F[j] // after the dC[j] read: dcPrev may alias dC

		dPre[j] = dI * cache.I[j] * (1 - cache.I[j])
		dPre[H+j] = dF * cache.F[j] * (1 - cache.F[j])
		dPre[2*H+j] = dO * cache.O[j] * (1 - cache.O[j])
		dPre[3*H+j] = dG * (1 - cache.G[j]*cache.G[j])
	}
	l.Wx.Grad.AddOuter(dPre, cache.X)
	l.Wh.Grad.AddOuter(dPre, cache.HPrev)
	for i, d := range dPre {
		l.B.Grad.Data[i] += d
	}
	zero(dx)
	l.Wx.Val.MulVecT(dPre, dx)
	zero(dhPrev) // dH fully consumed above, so aliasing is fine
	l.Wh.Val.MulVecT(dPre, dhPrev)
}
