package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewSeqNet("m", 7, 5, 4, 7, 0, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewSeqNet("m", 7, 5, 4, 7, 0, rand.New(rand.NewSource(99)))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), dst.Params()); err != nil {
		t.Fatal(err)
	}
	// Two workspaces: StepInto returns workspace-owned scratch, so the two
	// models' outputs must live in separate buffers to compare.
	wsA, wsB := NewWorkspace(nil), NewWorkspace(nil)
	sa, sb := src.NewState(), dst.NewState()
	for _, in := range []int{src.BOS(), 2, 5} {
		oa := src.StepInto(wsA, sa, in, false, nil)
		ob := dst.StepInto(wsB, sb, in, false, nil)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatal("loaded model diverges from saved model")
			}
		}
	}
}

func TestLoadRejectsMismatches(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := NewSeqNet("m", 7, 5, 4, 7, 0, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}

	// Different vocabulary size → shape mismatch.
	other := NewSeqNet("m", 9, 5, 4, 9, 0, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), other.Params()); err == nil {
		t.Error("shape mismatch must fail")
	}

	// Different name → unknown parameter.
	renamed := NewSeqNet("x", 7, 5, 4, 7, 0, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), renamed.Params()); err == nil {
		t.Error("name mismatch must fail")
	}

	// Different parameter count.
	if err := LoadParams(bytes.NewReader(buf.Bytes()), src.Params()[:2]); err == nil {
		t.Error("count mismatch must fail")
	}

	// Garbage input.
	if err := LoadParams(bytes.NewReader([]byte("junk")), src.Params()); err == nil {
		t.Error("garbage must fail")
	}
}
