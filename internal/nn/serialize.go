package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// paramBlob is the wire form of one parameter.
type paramBlob struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// checkpoint is the wire form of a parameter set.
type checkpoint struct {
	Magic   string
	Version int
	Params  []paramBlob
}

const (
	checkpointMagic   = "learnedsqlgen-nn"
	checkpointVersion = 1
)

// SaveParams writes the weights of params to w (gob-encoded). Gradients
// and optimizer state are not persisted: a loaded model is ready for
// inference and can resume training with fresh optimizer moments.
func SaveParams(w io.Writer, params []*Param) error {
	cp := checkpoint{Magic: checkpointMagic, Version: checkpointVersion}
	for _, p := range params {
		cp.Params = append(cp.Params, paramBlob{
			Name: p.Name,
			Rows: p.Val.Rows,
			Cols: p.Val.Cols,
			Data: p.Val.Data,
		})
	}
	return gob.NewEncoder(w).Encode(cp)
}

// LoadParams reads weights from r into params. Every stored parameter must
// match a target by name and shape, and vice versa — a mismatch means the
// checkpoint was produced by a different architecture or vocabulary.
func LoadParams(r io.Reader, params []*Param) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	if cp.Magic != checkpointMagic {
		return fmt.Errorf("nn: not a model checkpoint")
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", cp.Version)
	}
	if len(cp.Params) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d",
			len(cp.Params), len(params))
	}
	byName := map[string]*Param{}
	for _, p := range params {
		byName[p.Name] = p
	}
	for _, blob := range cp.Params {
		p, ok := byName[blob.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint parameter %q not in model", blob.Name)
		}
		if p.Val.Rows != blob.Rows || p.Val.Cols != blob.Cols {
			return fmt.Errorf("nn: %q shape %dx%d does not match model %dx%d "+
				"(different vocabulary or architecture?)",
				blob.Name, blob.Rows, blob.Cols, p.Val.Rows, p.Val.Cols)
		}
		copy(p.Val.Data, blob.Data)
	}
	return nil
}
