package nn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// paramBlob is the wire form of one parameter.
type paramBlob struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// checkpointV1 is the legacy (version 1) wire form: one gob stream holding
// every parameter, no integrity protection. Still readable; no longer
// written.
type checkpointV1 struct {
	Magic   string
	Version int
	Params  []paramBlob
}

const (
	checkpointMagicV1   = "learnedsqlgen-nn"
	checkpointVersionV1 = 1
	// checkpointVersionV2 is the current CRC-framed format (see the format
	// comment on SaveParams).
	checkpointVersionV2 = 2
	// maxFrameLen bounds a single frame so a corrupted length field cannot
	// drive a multi-gigabyte allocation before the CRC check runs.
	maxFrameLen = 1 << 28
)

// magicV2 leads every version-2 checkpoint. The leading zero byte makes
// the format unambiguously distinguishable from a legacy gob stream (a gob
// message never starts with a zero-length prefix), so LoadParams can sniff
// the version from the first bytes.
var magicV2 = [8]byte{0x00, 'L', 'S', 'G', 'C', 'K', 'P', '2'}

// ErrCorrupt marks a checkpoint whose bytes cannot be trusted: truncated
// files, CRC mismatches, impossible frame lengths, bad magic, or an
// unsupported version header. Loaders fall back to an older checkpoint
// when errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("nn: corrupt checkpoint")

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64
// and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SaveParams writes params to w in the version-2 durable checkpoint
// format:
//
//	magic[8] | version uint32 | nframes uint32
//	per frame: length uint32 | crc32c(payload) uint32 | payload
//
// (integers little-endian). Each frame's payload is the gob encoding of
// one parameter, so truncation and bit corruption are both detected at
// load time frame by frame. Gradients and optimizer state are not
// persisted: a loaded model is ready for inference and can resume
// training with fresh optimizer moments.
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicV2[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], checkpointVersionV2)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(params)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var payload bytes.Buffer
	for _, p := range params {
		payload.Reset()
		blob := paramBlob{Name: p.Name, Rows: p.Val.Rows, Cols: p.Val.Cols, Data: p.Val.Data}
		if err := gob.NewEncoder(&payload).Encode(blob); err != nil {
			return fmt.Errorf("nn: encode %q: %w", p.Name, err)
		}
		var fh [8]byte
		binary.LittleEndian.PutUint32(fh[0:4], uint32(payload.Len()))
		binary.LittleEndian.PutUint32(fh[4:8], crc32.Checksum(payload.Bytes(), crcTable))
		if _, err := bw.Write(fh[:]); err != nil {
			return err
		}
		if _, err := bw.Write(payload.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadParams reads a checkpoint from r into params, accepting both the
// current CRC-framed version-2 format and the legacy gob-only version-1
// format (sniffed from the leading bytes). Corruption — truncation, a
// flipped bit, an impossible length, an unrecognized version — surfaces
// as an error wrapping ErrCorrupt. Every stored parameter must match a
// target by name and shape, and vice versa — a mismatch means the
// checkpoint was produced by a different architecture or vocabulary.
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magicV2))
	if err != nil {
		return fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if bytes.Equal(head, magicV2[:]) {
		return loadParamsV2(br, params)
	}
	return loadParamsV1(br, params)
}

// loadParamsV2 decodes the CRC-framed format after the magic has been
// sniffed.
func loadParamsV2(br *bufio.Reader, params []*Param) error {
	if _, err := br.Discard(len(magicV2)); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	version := binary.LittleEndian.Uint32(hdr[0:4])
	nframes := binary.LittleEndian.Uint32(hdr[4:8])
	if version != checkpointVersionV2 {
		return fmt.Errorf("%w: unsupported checkpoint version %d", ErrCorrupt, version)
	}
	blobs := make([]paramBlob, 0, nframes)
	var buf []byte
	for i := uint32(0); i < nframes; i++ {
		var fh [8]byte
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return fmt.Errorf("%w: truncated at frame %d header", ErrCorrupt, i)
		}
		length := binary.LittleEndian.Uint32(fh[0:4])
		wantCRC := binary.LittleEndian.Uint32(fh[4:8])
		if length > maxFrameLen {
			return fmt.Errorf("%w: frame %d claims %d bytes", ErrCorrupt, i, length)
		}
		if uint32(cap(buf)) < length {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("%w: truncated inside frame %d", ErrCorrupt, i)
		}
		if got := crc32.Checksum(buf, crcTable); got != wantCRC {
			return fmt.Errorf("%w: frame %d CRC mismatch (stored %08x, computed %08x)",
				ErrCorrupt, i, wantCRC, got)
		}
		var blob paramBlob
		if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&blob); err != nil {
			return fmt.Errorf("%w: frame %d payload: %v", ErrCorrupt, i, err)
		}
		blobs = append(blobs, blob)
	}
	return applyBlobs(blobs, params)
}

// loadParamsV1 decodes the legacy single-gob format.
func loadParamsV1(br *bufio.Reader, params []*Param) error {
	var cp checkpointV1
	if err := gob.NewDecoder(br).Decode(&cp); err != nil {
		return fmt.Errorf("%w: decode legacy checkpoint: %v", ErrCorrupt, err)
	}
	if cp.Magic != checkpointMagicV1 {
		return fmt.Errorf("%w: not a model checkpoint", ErrCorrupt)
	}
	if cp.Version != checkpointVersionV1 {
		return fmt.Errorf("%w: unsupported checkpoint version %d", ErrCorrupt, cp.Version)
	}
	return applyBlobs(cp.Params, params)
}

// applyBlobs copies decoded parameter payloads into the model, enforcing
// the exact name/shape bijection shared by both format versions.
func applyBlobs(blobs []paramBlob, params []*Param) error {
	if len(blobs) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d",
			len(blobs), len(params))
	}
	byName := map[string]*Param{}
	for _, p := range params {
		byName[p.Name] = p
	}
	for _, blob := range blobs {
		p, ok := byName[blob.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint parameter %q not in model", blob.Name)
		}
		if p.Val.Rows != blob.Rows || p.Val.Cols != blob.Cols || len(blob.Data) != len(p.Val.Data) {
			return fmt.Errorf("nn: %q shape %dx%d does not match model %dx%d "+
				"(different vocabulary or architecture?)",
				blob.Name, blob.Rows, blob.Cols, p.Val.Rows, p.Val.Cols)
		}
		copy(p.Val.Data, blob.Data)
	}
	return nil
}
