package nn

import (
	"math"
	"sync"
	"sync/atomic"
)

// This file implements the inference-only quantized compute path: int8
// weights with symmetric per-gate-row scales (zero-point 0), dynamically
// quantized activations, int32 integer dot products, and float32
// dequantization of the gate pre-activations. Recurrent state (h, c) and
// the gate nonlinearities stay float64, so a QuantizedSeqNet reads and
// writes the same SeqState the float64 kernels use — the prefix-state
// trie, CopyRecurrentTo and every caller above remain oblivious.
//
// Three structural choices buy the speedup in pure Go:
//
//  1. The layer-1 input-side pre-activations Wx1·E[v] + b1 depend only on
//     the token id, so QuantizeSeqNet tabulates them per token in float32
//     (computed from the float64 weights — that term carries no
//     quantization error at all) and the step replaces a 4H×EmbedDim
//     matmul with a table row.
//  2. Gate weights are packed element-interleaved: the four gate weights
//     of hidden unit j for input element k sit in adjacent bytes, so one
//     pass over the input vector feeds four independent int32
//     accumulators — a quarter of the loop/index overhead of four
//     row-major dot products, with no serial dependence between the
//     accumulator chains.
//  3. The gate nonlinearities use a clamped Padé approximant of tanh
//     (absolute error < 2e-4, far inside the tolerance bounds below)
//     instead of math.Exp-based sigmoid/tanh.
//
// Training never uses this path — quantization noise in gradients is not
// tolerance-bounded — which is why the selection lives on the Workspace's
// inference mode (SetQuantized) rather than on the network.

// Documented tolerance bounds for the quantized inference path. The
// byte-identity contract of the float64 stack is relaxed to these two
// observational bounds; the conformance tests and the oracle sweep fail
// if drift exceeds them.
const (
	// QuantMaxLogitError bounds |logit_int8 − logit_float64| per step when
	// both paths consume the same token sequence (recurrent-state error
	// compounds over an episode; the bound covers full-length episodes).
	QuantMaxLogitError = 0.05
	// QuantMinTopKAgreement is the minimum fraction of teacher-forced
	// steps whose masked top-1 action matches between the two paths.
	QuantMinTopKAgreement = 0.95
)

// fastTanh is a clamped Padé(7,6) approximant of tanh (Lambert's
// continued fraction). Absolute error is below 2e-4 everywhere: ~1e-7
// for |x| ≤ 3, worst at the |x| = 4.97 clamp where 1 − tanh ≈ 1.4e-4.
func fastTanh(x float64) float64 {
	if x > 4.97 {
		return 1
	}
	if x < -4.97 {
		return -1
	}
	x2 := x * x
	p := x * (135135 + x2*(17325+x2*(378+x2)))
	q := 135135 + x2*(62370+x2*(3150+28*x2))
	return p / q
}

// fastSigmoid is σ(x) = (1 + tanh(x/2))/2 on fastTanh; absolute error
// below 1e-4.
func fastSigmoid(x float64) float64 { return 0.5 + 0.5*fastTanh(0.5*x) }

// qmat is an int8 matrix with symmetric per-row scales: the float64
// original's row i is approximately scale[i] · w[row i]. Used for the
// head, where masked steps touch few independent rows.
type qmat struct {
	rows, cols int
	w          []int8
	scale      []float32
}

// quantizeMatInto fills q from m, reusing q's buffers when large enough.
func quantizeMatInto(q *qmat, m *Mat) {
	q.rows, q.cols = m.Rows, m.Cols
	if cap(q.w) < len(m.Data) {
		q.w = make([]int8, len(m.Data))
	}
	q.w = q.w[:len(m.Data)]
	if cap(q.scale) < m.Rows {
		q.scale = make([]float32, m.Rows)
	}
	q.scale = q.scale[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := rowScale(row)
		inv := 1 / s
		q.scale[i] = float32(s)
		out := q.w[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out[j] = int8(math.Round(v * inv)) // |v|·inv ≤ 127 by construction
		}
	}
}

// rowScale returns the symmetric int8 scale maxAbs/127 of a weight row
// (1 for an all-zero row, where any scale round-trips to zero).
func rowScale(row []float64) float64 {
	maxAbs := 0.0
	for _, v := range row {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / 127
}

// row returns the int8 row i.
func (q *qmat) row(i int) []int8 { return q.w[i*q.cols : (i+1)*q.cols] }

// quantizeVecInto symmetrically quantizes x into dst (same length) and
// returns the scale s with x[j] ≈ s · dst[j].
func quantizeVecInto(x []float64, dst []int8) float32 {
	maxAbs := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	s := maxAbs / 127
	if s == 0 {
		// All-zero input: dst must still be written — workspace buffers
		// carry stale values from the previous episode.
		for j := range dst {
			dst[j] = 0
		}
		return 1
	}
	inv := 1 / s
	for j, v := range x {
		dst[j] = int8(math.Round(v * inv))
	}
	return float32(s)
}

// dotI8 is the int8·int8 → int32 inner product, unrolled so the four
// independent partial products hide the widening-multiply latency.
func dotI8(a, b []int8) int32 {
	var acc int32
	n := len(a)
	b = b[:n] // bounds-check hint
	j := 0
	for ; j+3 < n; j += 4 {
		acc += int32(a[j])*int32(b[j]) +
			int32(a[j+1])*int32(b[j+1]) +
			int32(a[j+2])*int32(b[j+2]) +
			int32(a[j+3])*int32(b[j+3])
	}
	for ; j < n; j++ {
		acc += int32(a[j]) * int32(b[j])
	}
	return acc
}

// qgates holds the gate weights of one LSTM matrix packed
// element-interleaved: for hidden unit j and input element k, the four
// gate weights (input, forget, output, candidate — source rows j, H+j,
// 2H+j, 3H+j) occupy bytes w[j*4*cols + 4*k .. +3]. scale[4*j+g] is the
// per-gate-row symmetric scale.
type qgates struct {
	hidden, cols int
	w            []int8
	scale        []float32
}

// pack fills g from the 4H×cols gate matrix m.
func (g *qgates) pack(m *Mat, hidden int) {
	cols := m.Cols
	g.hidden, g.cols = hidden, cols
	if cap(g.w) < len(m.Data) {
		g.w = make([]int8, len(m.Data))
	}
	g.w = g.w[:len(m.Data)]
	if cap(g.scale) < 4*hidden {
		g.scale = make([]float32, 4*hidden)
	}
	g.scale = g.scale[:4*hidden]
	for j := 0; j < hidden; j++ {
		block := g.w[j*4*cols : (j+1)*4*cols]
		for gate := 0; gate < 4; gate++ {
			row := m.Data[(gate*hidden+j)*cols : (gate*hidden+j+1)*cols]
			s := rowScale(row)
			inv := 1 / s
			g.scale[4*j+gate] = float32(s)
			for k, v := range row {
				block[4*k+gate] = int8(math.Round(v * inv))
			}
		}
	}
}

// gemv4Into accumulates the dequantized gate pre-activations of every
// hidden unit into pre (gate-interleaved, length 4·hidden): pre[4j+g] +=
// scale[4j+g]·xs · Σₖ w[j,k,g]·x[k]. The inner reduction runs four
// independent int32 accumulator chains over one pass of x, two elements
// per iteration; one call covers the whole matrix, so the per-row
// function-call and slice-header overhead of a rowwise dot is paid once
// per layer instead of once per gate row.
func (g *qgates) gemv4Into(x []int8, xs float32, pre []float32) {
	n := len(x)
	for j := 0; j < g.hidden; j++ {
		w := g.w[j*4*g.cols : j*4*g.cols+4*n]
		var a0, a1, a2, a3 int32
		k := 0
		for ; k+1 < n; k += 2 {
			xk0 := int32(x[k])
			xk1 := int32(x[k+1])
			b := w[4*k : 4*k+8 : 4*k+8]
			a0 += int32(b[0])*xk0 + int32(b[4])*xk1
			a1 += int32(b[1])*xk0 + int32(b[5])*xk1
			a2 += int32(b[2])*xk0 + int32(b[6])*xk1
			a3 += int32(b[3])*xk0 + int32(b[7])*xk1
		}
		if k < n {
			xk := int32(x[k])
			b := w[4*k : 4*k+4 : 4*k+4]
			a0 += int32(b[0]) * xk
			a1 += int32(b[1]) * xk
			a2 += int32(b[2]) * xk
			a3 += int32(b[3]) * xk
		}
		s := g.scale[4*j : 4*j+4 : 4*j+4]
		p := pre[4*j : 4*j+4 : 4*j+4]
		p[0] += float32(a0) * (s[0] * xs)
		p[1] += float32(a1) * (s[1] * xs)
		p[2] += float32(a2) * (s[2] * xs)
		p[3] += float32(a3) * (s[3] * xs)
	}
}

// qLSTM is one quantized recurrent layer. wx is nil when the input-side
// pre-activations come precomputed (layer 1, whose input is a pure
// function of the token id); bias is then folded into that table.
type qLSTM struct {
	hidden int
	wx     *qgates // nil → input side precomputed
	wh     qgates
	b      []float32 // nil when folded into the precomputed table
}

// step advances the layer in place: h and c (float64, length hidden) are
// updated from the input side and the current h. The input side is
// either the precomputed pre-activation row px (gate-interleaved, length
// 4H, bias included) or the quantized vector (xq, xs) reduced against
// wx with the bias added. Gate reduction is int32, dequantization and
// pre-activation accumulation float32, and the nonlinearities and state
// update float64 — matching LSTM.StepInto's structure with fastTanh in
// place of math.Exp/math.Tanh.
func (l *qLSTM) step(ws *Workspace, px []float32, xq []int8, xs float32, h, c []float64) {
	H := l.hidden
	ws.qh = growI8(ws.qh, H)
	hs := quantizeVecInto(h, ws.qh)
	ws.qpre = growF32(ws.qpre, 4*H)
	pre := ws.qpre
	if px != nil {
		copy(pre, px[:4*H])
	} else {
		copy(pre, l.b)
		l.wx.gemv4Into(xq, xs, pre)
	}
	l.wh.gemv4Into(ws.qh, hs, pre)
	for j := 0; j < H; j++ {
		p := pre[4*j : 4*j+4 : 4*j+4]
		i := fastSigmoid(float64(p[0]))
		f := fastSigmoid(float64(p[1]))
		o := fastSigmoid(float64(p[2]))
		g := fastTanh(float64(p[3]))
		cn := f*c[j] + i*g
		c[j] = cn
		h[j] = o * fastTanh(cn)
	}
}

// QuantizedSeqNet is an int8 inference snapshot of a SeqNet: layer 1
// carries a per-token float32 table of its input-side gate
// pre-activations (filled lazily, first use of each token), both LSTM
// layers carry packed int8 gate weights, and the head is quantized per
// row. The weight data is read-only after construction and the lazy
// table is internally synchronized, so one snapshot may serve any number
// of concurrent rollout workers. Build one per weight version — it does
// not track later updates to the source network (the rollout engine
// rebuilds it per inference batch, mirroring the prefix-state trie's
// lifetime).
type QuantizedSeqNet struct {
	src    *SeqNet
	hidden int
	outDim int

	// px[v·4H:(v+1)·4H] is Wx1·E[v] + b1, gate-interleaved, computed in
	// float64 from the unquantized weights (that term carries no
	// quantization error) the first time token v is stepped: a snapshot
	// dies with one inference batch, and a batch's FSM walks touch a
	// fraction of the vocabulary, so tabulating eagerly would cost more
	// than the batch saves. pxReady[v] is the double-checked flag
	// (atomic load on the hot path; pxMu serializes fills).
	px      []float32
	pxReady []uint32
	pxMu    sync.Mutex

	l1, l2 qLSTM
	head   qmat
	headB  []float32
}

// QuantizeSeqNet builds an int8 inference snapshot of n's current
// weights: one pass over the recurrent and head parameters (layer 1's
// input-side table fills lazily per token during rollout), cheap enough
// that callers requantize whenever the source weights may have changed
// rather than tracking versions.
func QuantizeSeqNet(n *SeqNet) *QuantizedSeqNet {
	return QuantizeSeqNetInto(nil, n)
}

// QuantizeSeqNetInto is QuantizeSeqNet reusing a previous snapshot's
// buffers (nil q allocates a fresh one). The px table dominates a
// snapshot's footprint — vocabulary × 4H float32 — so a caller that
// requantizes every inference batch should recycle one snapshot value
// instead of allocating it each time; only the lazy-fill flags are reset
// (px rows refill on first use, gated by the flags, so their stale
// content is never read). The caller must ensure no rollout worker still
// steps through q when it is rebuilt.
func QuantizeSeqNetInto(q *QuantizedSeqNet, n *SeqNet) *QuantizedSeqNet {
	if q == nil {
		q = &QuantizedSeqNet{}
	}
	q.src = n
	q.hidden = n.Hidden
	q.outDim = n.OutDim
	H := n.Hidden
	vocab := n.VocabSize + 1 // embedding includes the BOS row
	if cap(q.px) < vocab*4*H {
		q.px = make([]float32, vocab*4*H)
	}
	q.px = q.px[:vocab*4*H]
	if cap(q.pxReady) < vocab {
		q.pxReady = make([]uint32, vocab)
	}
	q.pxReady = q.pxReady[:vocab]
	for i := range q.pxReady {
		q.pxReady[i] = 0
	}
	q.l1.hidden = H
	q.l1.wh.pack(n.L1.Wh.Val, H)
	q.l2.hidden = H
	if q.l2.wx == nil {
		q.l2.wx = &qgates{}
	}
	q.l2.wx.pack(n.L2.Wx.Val, H)
	q.l2.wh.pack(n.L2.Wh.Val, H)
	if cap(q.l2.b) < 4*H {
		q.l2.b = make([]float32, 4*H)
	}
	q.l2.b = q.l2.b[:4*H]
	for gate := 0; gate < 4; gate++ {
		for j := 0; j < H; j++ {
			q.l2.b[4*j+gate] = float32(n.L2.B.Val.Data[gate*H+j])
		}
	}
	quantizeMatInto(&q.head, n.Head.W.Val)
	if cap(q.headB) < n.OutDim {
		q.headB = make([]float32, n.OutDim)
	}
	q.headB = q.headB[:n.OutDim]
	for i, v := range n.Head.B.Val.Data {
		q.headB[i] = float32(v)
	}
	return q
}

// Src returns the network this snapshot was quantized from. The dispatch
// in SeqNet.StepInto only takes the fast path when the stepped network is
// the snapshot's source, so stale snapshots of other networks are inert.
func (q *QuantizedSeqNet) Src() *SeqNet { return q.src }

// pxRow returns token in's layer-1 input-side pre-activation row,
// computing it on first use. The atomic flag read makes the filled row's
// writes visible (fillPx publishes the flag after the row under pxMu).
func (q *QuantizedSeqNet) pxRow(in int) []float32 {
	if atomic.LoadUint32(&q.pxReady[in]) == 0 {
		q.fillPx(in)
	}
	H := q.hidden
	return q.px[in*4*H : (in+1)*4*H]
}

// fillPx computes px row in: exact float64 products of the unquantized
// layer-1 input weights with the token's embedding, bias folded in,
// gate-interleaved.
func (q *QuantizedSeqNet) fillPx(in int) {
	q.pxMu.Lock()
	defer q.pxMu.Unlock()
	if q.pxReady[in] == 1 { // raced with another worker's fill
		return
	}
	n := q.src
	H := q.hidden
	e := n.E.Row(in)
	wx := n.L1.Wx.Val
	b := n.L1.B.Val.Data
	out := q.px[in*4*H : (in+1)*4*H]
	for gate := 0; gate < 4; gate++ {
		for j := 0; j < H; j++ {
			row := wx.Row(gate*H + j)
			s := b[gate*H+j]
			for k, ev := range e {
				s += row[k] * ev
			}
			out[4*j+gate] = float32(s)
		}
	}
	atomic.StoreUint32(&q.pxReady[in], 1)
}

// stepState advances both recurrent layers for input token in and leaves
// st.h2 quantized in ws.qx (returning its scale) for the head.
func (q *QuantizedSeqNet) stepState(ws *Workspace, st *SeqState, in int) float32 {
	H := q.hidden
	// Layer 1's input side is the precomputed pre-activation row.
	q.l1.step(ws, q.pxRow(in), nil, 0, st.h1, st.c1)
	// Layer 2 consumes the fresh h1, quantized dynamically.
	ws.qx = growI8(ws.qx, H)
	xs := quantizeVecInto(st.h1, ws.qx)
	q.l2.step(ws, nil, ws.qx, xs, st.h2, st.c2)
	// Quantize the fresh h2 for the head (qx is free again).
	ws.qx = growI8(ws.qx, H)
	return quantizeVecInto(st.h2, ws.qx)
}

// stepMaskedInto mirrors SeqNet.StepMaskedInto on the quantized path:
// only the head rows in ids are computed; other entries of the returned
// workspace-owned logits are stale.
func (q *QuantizedSeqNet) stepMaskedInto(ws *Workspace, st *SeqState, in int, ids []int) []float64 {
	hs := q.stepState(ws, st, in)
	ws.logits = grow(ws.logits, q.outDim)
	for _, id := range ids {
		acc := dotI8(q.head.row(id), ws.qx)
		ws.logits[id] = float64(float32(acc)*(q.head.scale[id]*hs) + q.headB[id])
	}
	return ws.logits
}

// stepInto mirrors SeqNet.StepInto: the full head output is computed.
func (q *QuantizedSeqNet) stepInto(ws *Workspace, st *SeqState, in int) []float64 {
	hs := q.stepState(ws, st, in)
	ws.logits = grow(ws.logits, q.outDim)
	for id := 0; id < q.outDim; id++ {
		acc := dotI8(q.head.row(id), ws.qx)
		ws.logits[id] = float64(float32(acc)*(q.head.scale[id]*hs) + q.headB[id])
	}
	return ws.logits
}
