package nn

import (
	"math/rand"
)

// SeqNet is the sequence model of §4.3: a token embedding (the one-hot
// state encoding folded into the first weight matrix), a 2-layer LSTM with
// 30 cell units each, dropout between layers and before the head, and a
// linear head. The actor uses Out = |A| (softmax over tokens); the critic
// uses Out = 1 (the V value).
type SeqNet struct {
	VocabSize int
	EmbedDim  int
	Hidden    int
	OutDim    int
	DropRate  float64

	E    *Embedding
	L1   *LSTM
	L2   *LSTM
	Head *Linear
}

// NewSeqNet builds the network. A virtual BOS token occupies embedding row
// vocabSize and feeds the first step of every episode.
func NewSeqNet(name string, vocabSize, embedDim, hidden, outDim int, dropRate float64, rng *rand.Rand) *SeqNet {
	return &SeqNet{
		VocabSize: vocabSize,
		EmbedDim:  embedDim,
		Hidden:    hidden,
		OutDim:    outDim,
		DropRate:  dropRate,
		E:         NewEmbedding(name+".E", vocabSize+1, embedDim, rng),
		L1:        NewLSTM(name+".L1", embedDim, hidden, rng),
		L2:        NewLSTM(name+".L2", hidden, hidden, rng),
		Head:      NewLinear(name+".Head", hidden, outDim, rng),
	}
}

// BOS is the begin-of-sequence input id.
func (n *SeqNet) BOS() int { return n.VocabSize }

// Params lists all trainable parameters.
func (n *SeqNet) Params() []*Param {
	ps := n.E.Params()
	ps = append(ps, n.L1.Params()...)
	ps = append(ps, n.L2.Params()...)
	ps = append(ps, n.Head.Params()...)
	return ps
}

// CopyWeightsFrom copies all weights (not optimizer state) from src, which
// must have identical shapes.
func (n *SeqNet) CopyWeightsFrom(src *SeqNet) {
	dst := n.Params()
	from := src.Params()
	for i := range dst {
		dst[i].CopyFrom(from[i])
	}
}

type seqStep struct {
	in      int
	c1, c2  *LSTMCache
	midMask []bool
	outMask []bool
	headIn  []float64
}

// SeqState carries the recurrent state and the BPTT tape of one episode.
type SeqState struct {
	h1, c1, h2, c2 []float64
	steps          []*seqStep
}

// NewState starts an episode with zero recurrent state.
func (n *SeqNet) NewState() *SeqState {
	return &SeqState{
		h1: make([]float64, n.Hidden), c1: make([]float64, n.Hidden),
		h2: make([]float64, n.Hidden), c2: make([]float64, n.Hidden),
	}
}

// Len returns the number of steps taken.
func (s *SeqState) Len() int { return len(s.steps) }

// LastHidden returns the top-layer hidden state after the most recent step
// (zeros before any step). Callers must not mutate it.
func (s *SeqState) LastHidden() []float64 { return s.h2 }

// Step feeds token id `in` and returns the head output for the new state.
// With training=true, dropout is sampled from rng and recorded for
// Backward.
func (n *SeqNet) Step(st *SeqState, in int, training bool, rng *rand.Rand) []float64 {
	step := &seqStep{in: in}
	x := n.E.Lookup(in)
	var h1, c1v []float64
	h1, c1v, step.c1 = n.L1.Step(x, st.h1, st.c1)
	st.h1, st.c1 = h1, c1v

	mid := append([]float64(nil), h1...)
	if training {
		step.midMask = Dropout(mid, n.DropRate, rng)
	}
	var h2, c2v []float64
	h2, c2v, step.c2 = n.L2.Step(mid, st.h2, st.c2)
	st.h2, st.c2 = h2, c2v

	headIn := append([]float64(nil), h2...)
	if training {
		step.outMask = Dropout(headIn, n.DropRate, rng)
	}
	step.headIn = headIn
	st.steps = append(st.steps, step)
	return n.Head.Forward(headIn)
}

// StepMasked is Step but computes head outputs only for the given ids
// (other logits stay zero and must be masked downstream). It avoids the
// full |A|-sized head matmul, which dominates the per-step cost.
func (n *SeqNet) StepMasked(st *SeqState, in int, ids []int, training bool, rng *rand.Rand) []float64 {
	step := &seqStep{in: in}
	x := n.E.Lookup(in)
	var h1, c1v []float64
	h1, c1v, step.c1 = n.L1.Step(x, st.h1, st.c1)
	st.h1, st.c1 = h1, c1v

	mid := append([]float64(nil), h1...)
	if training {
		step.midMask = Dropout(mid, n.DropRate, rng)
	}
	var h2, c2v []float64
	h2, c2v, step.c2 = n.L2.Step(mid, st.h2, st.c2)
	st.h2, st.c2 = h2, c2v

	headIn := append([]float64(nil), h2...)
	if training {
		step.outMask = Dropout(headIn, n.DropRate, rng)
	}
	step.headIn = headIn
	st.steps = append(st.steps, step)
	out := make([]float64, n.OutDim)
	n.Head.ForwardSparse(headIn, ids, out)
	return out
}

// Backward runs full BPTT over the episode. dHead[t] is the gradient of
// the loss with respect to the head output at step t (nil for steps that
// contribute no direct loss). Parameter gradients accumulate into Params.
func (n *SeqNet) Backward(st *SeqState, dHead [][]float64) {
	H := n.Hidden
	dh1n := make([]float64, H)
	dc1n := make([]float64, H)
	dh2n := make([]float64, H)
	dc2n := make([]float64, H)
	for t := len(st.steps) - 1; t >= 0; t-- {
		step := st.steps[t]
		dh2 := append([]float64(nil), dh2n...)
		dc2 := dc2n
		if t < len(dHead) && dHead[t] != nil {
			d := n.Head.Backward(step.headIn, dHead[t])
			DropoutBackward(d, step.outMask, n.DropRate)
			for j := range dh2 {
				dh2[j] += d[j]
			}
		}
		dx2, dh2p, dc2p := n.L2.Backward(step.c2, dh2, dc2)
		DropoutBackward(dx2, step.midMask, n.DropRate)

		dh1 := append([]float64(nil), dh1n...)
		for j := range dh1 {
			dh1[j] += dx2[j]
		}
		dx1, dh1p, dc1p := n.L1.Backward(step.c1, dh1, dc1n)
		n.E.Accumulate(step.in, dx1)

		dh1n, dc1n = dh1p, dc1p
		dh2n, dc2n = dh2p, dc2p
	}
}
