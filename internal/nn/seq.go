package nn

import (
	"math/rand"
)

// SeqNet is the sequence model of §4.3: a token embedding (the one-hot
// state encoding folded into the first weight matrix), a 2-layer LSTM with
// 30 cell units each, dropout between layers and before the head, and a
// linear head. The actor uses Out = |A| (softmax over tokens); the critic
// uses Out = 1 (the V value).
//
// All step and backward kernels run through an explicit Workspace: the
// caller owns the scratch memory and the BPTT tape objects cycle through
// the workspace's CachePool, so steady-state rollout steps allocate
// nothing.
type SeqNet struct {
	VocabSize int
	EmbedDim  int
	Hidden    int
	OutDim    int
	DropRate  float64

	E    *Embedding
	L1   *LSTM
	L2   *LSTM
	Head *Linear
}

// NewSeqNet builds the network. A virtual BOS token occupies embedding row
// vocabSize and feeds the first step of every episode.
func NewSeqNet(name string, vocabSize, embedDim, hidden, outDim int, dropRate float64, rng *rand.Rand) *SeqNet {
	return &SeqNet{
		VocabSize: vocabSize,
		EmbedDim:  embedDim,
		Hidden:    hidden,
		OutDim:    outDim,
		DropRate:  dropRate,
		E:         NewEmbedding(name+".E", vocabSize+1, embedDim, rng),
		L1:        NewLSTM(name+".L1", embedDim, hidden, rng),
		L2:        NewLSTM(name+".L2", hidden, hidden, rng),
		Head:      NewLinear(name+".Head", hidden, outDim, rng),
	}
}

// BOS is the begin-of-sequence input id.
func (n *SeqNet) BOS() int { return n.VocabSize }

// Params lists all trainable parameters.
func (n *SeqNet) Params() []*Param {
	ps := n.E.Params()
	ps = append(ps, n.L1.Params()...)
	ps = append(ps, n.L2.Params()...)
	ps = append(ps, n.Head.Params()...)
	return ps
}

// CopyWeightsFrom copies all weights (not optimizer state) from src, which
// must have identical shapes.
func (n *SeqNet) CopyWeightsFrom(src *SeqNet) {
	dst := n.Params()
	from := src.Params()
	for i := range dst {
		dst[i].CopyFrom(from[i])
	}
}

// seqStep is one tape entry. Its cache/mask/vector members come from the
// CachePool and go back there on Workspace.Recycle.
type seqStep struct {
	in      int
	c1, c2  *LSTMCache
	midMask []bool
	outMask []bool
	headIn  []float64
}

// SeqState carries the recurrent state and the BPTT tape of one episode.
// Training steps (training=true) append to the tape; inference steps
// leave it untouched, so Generate-style rollouts carry no per-step
// bookkeeping at all.
type SeqState struct {
	h1, c1, h2, c2 []float64
	steps          []seqStep
}

// NewState starts an episode with zero recurrent state, plainly allocated.
// Rollout engines acquire pooled states via CachePool.GetState instead and
// return them with Workspace.Recycle.
func (n *SeqNet) NewState() *SeqState {
	return &SeqState{
		h1: make([]float64, n.Hidden), c1: make([]float64, n.Hidden),
		h2: make([]float64, n.Hidden), c2: make([]float64, n.Hidden),
	}
}

// Len returns the number of tape entries recorded (training steps only).
func (s *SeqState) Len() int { return len(s.steps) }

// LastHidden returns the top-layer hidden state after the most recent step
// (zeros before any step). Callers must not mutate it.
func (s *SeqState) LastHidden() []float64 { return s.h2 }

// CopyRecurrentTo copies the recurrent state (layer 1 and 2 hidden/cell)
// into the destination slices, each of length Hidden. The prefix-state
// cache snapshots episode states through this.
func (s *SeqState) CopyRecurrentTo(h1, c1, h2, c2 []float64) {
	copy(h1, s.h1)
	copy(c1, s.c1)
	copy(h2, s.h2)
	copy(c2, s.c2)
}

// SetRecurrent overwrites the recurrent state from the source slices, each
// of length Hidden. The BPTT tape is unaffected — restoring mid-episode is
// only valid for inference states with no tape.
func (s *SeqState) SetRecurrent(h1, c1, h2, c2 []float64) {
	copy(s.h1, h1)
	copy(s.c1, c1)
	copy(s.h2, h2)
	copy(s.c2, c2)
}

// stepInner advances the recurrent layers for token `in` and returns the
// head input. With training=true it appends a tape entry with pooled
// caches (and applies dropout drawn from rng); the returned head input is
// then the tape-owned copy. With training=false it returns st.h2 directly
// and records nothing.
func (n *SeqNet) stepInner(ws *Workspace, st *SeqState, in int, training bool, rng *rand.Rand) []float64 {
	var step *seqStep
	var c1, c2 *LSTMCache
	if training {
		st.steps = append(st.steps, seqStep{in: in})
		step = &st.steps[len(st.steps)-1]
		step.c1 = ws.pool.getCache()
		step.c2 = ws.pool.getCache()
		c1, c2 = step.c1, step.c2
	}

	n.L1.StepInto(ws, n.E.Row(in), st.h1, st.c1, c1)

	// Layer boundary: dropout needs a scratch copy so st.h1 keeps the
	// undropped value for the next step; without dropout L2 reads st.h1
	// directly (its cache captures its own copy of the input).
	mid := st.h1
	if training && n.DropRate > 0 && rng != nil {
		ws.mid = growCopy(ws.mid, st.h1)
		step.midMask = ws.pool.getMask(n.Hidden)
		dropoutMasked(ws.mid, n.DropRate, rng, step.midMask)
		mid = ws.mid
	}
	n.L2.StepInto(ws, mid, st.h2, st.c2, c2)

	if !training {
		return st.h2
	}
	// The head input must outlive the step (head backward reads it), so it
	// is a pooled copy owned by the tape.
	hi := ws.pool.GetVec(n.Hidden)
	copy(hi, st.h2)
	if n.DropRate > 0 && rng != nil {
		step.outMask = ws.pool.getMask(n.Hidden)
		dropoutMasked(hi, n.DropRate, rng, step.outMask)
	}
	step.headIn = hi
	return hi
}

// StepInto feeds token id `in`, updating st in place, and returns the full
// head output. The returned slice is workspace-owned scratch, valid only
// until the workspace's next step — callers that retain it must copy.
// training=true records the BPTT tape (pooled) and samples dropout from
// rng; training=false skips tape capture entirely and, when the workspace
// holds a quantized snapshot of this network (Workspace.SetQuantized),
// runs the int8 fused kernels within the quant.go tolerance contract.
func (n *SeqNet) StepInto(ws *Workspace, st *SeqState, in int, training bool, rng *rand.Rand) []float64 {
	if !training {
		if q := ws.quant; q != nil && q.src == n {
			return q.stepInto(ws, st, in)
		}
	}
	headIn := n.stepInner(ws, st, in, training, rng)
	ws.logits = grow(ws.logits, n.OutDim)
	n.Head.ForwardInto(headIn, ws.logits)
	return ws.logits
}

// StepMaskedInto is StepInto but computes head outputs only for the given
// ids; other entries of the returned workspace-owned slice are stale and
// must be masked downstream. It avoids the full |A|-sized head matmul,
// which dominates the per-step cost.
func (n *SeqNet) StepMaskedInto(ws *Workspace, st *SeqState, in int, ids []int, training bool, rng *rand.Rand) []float64 {
	if !training {
		if q := ws.quant; q != nil && q.src == n {
			return q.stepMaskedInto(ws, st, in, ids)
		}
	}
	headIn := n.stepInner(ws, st, in, training, rng)
	ws.logits = grow(ws.logits, n.OutDim)
	n.Head.ForwardSparse(headIn, ids, ws.logits)
	return ws.logits
}

// BackwardInto runs full BPTT over the episode's tape. dHead[t] is the
// gradient of the loss with respect to the head output at step t (nil for
// steps that contribute no direct loss). Parameter gradients accumulate
// into Params; all running gradients live in ws.
func (n *SeqNet) BackwardInto(ws *Workspace, st *SeqState, dHead [][]float64) {
	H := n.Hidden
	ws.dh1 = grow(ws.dh1, H)
	ws.dc1 = grow(ws.dc1, H)
	ws.dh2 = grow(ws.dh2, H)
	ws.dc2 = grow(ws.dc2, H)
	zero(ws.dh1)
	zero(ws.dc1)
	zero(ws.dh2)
	zero(ws.dc2)
	ws.dmid = grow(ws.dmid, H)
	ws.dheadIn = grow(ws.dheadIn, H)
	ws.dxEmbed = grow(ws.dxEmbed, n.EmbedDim)
	dh1, dc1, dh2, dc2 := ws.dh1, ws.dc1, ws.dh2, ws.dc2

	for t := len(st.steps) - 1; t >= 0; t-- {
		step := &st.steps[t]
		if t < len(dHead) && dHead[t] != nil {
			n.Head.BackwardInto(step.headIn, dHead[t], ws.dheadIn)
			DropoutBackward(ws.dheadIn, step.outMask, n.DropRate)
			for j := range dh2 {
				dh2[j] += ws.dheadIn[j]
			}
		}
		// In-place running-gradient update: dhPrev/dcPrev alias dH/dC.
		n.L2.BackwardInto(ws, step.c2, dh2, dc2, ws.dmid, dh2, dc2)
		DropoutBackward(ws.dmid, step.midMask, n.DropRate)
		for j := range dh1 {
			dh1[j] += ws.dmid[j]
		}
		n.L1.BackwardInto(ws, step.c1, dh1, dc1, ws.dxEmbed, dh1, dc1)
		n.E.Accumulate(step.in, ws.dxEmbed)
	}
}
