package nn

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// This file holds the numeric-health primitives behind the rl divergence
// watchdog: gradient-norm measurement, NaN/Inf detection over a parameter
// set, weight snapshot/restore for rollback, and a content checksum used
// by checkpoint and rollback tests to assert byte-exact weight identity.

// GradNorm returns the global L2 norm of the accumulated gradients across
// params — the pre-clip quantity the divergence watchdog compares against
// Config.MaxGradNorm. A NaN or ±Inf gradient anywhere makes the result
// non-finite, so one call both measures explosion and detects poison.
func GradNorm(params []*Param) float64 {
	var sum float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sum += g * g
		}
	}
	return math.Sqrt(sum)
}

// ParamsFinite reports whether every weight in params is finite (no NaN,
// no ±Inf) — the post-update health check.
func ParamsFinite(params []*Param) bool {
	for _, p := range params {
		for _, v := range p.Val.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// ZeroGrads clears the accumulated gradients of every parameter —
// discarding a poisoned batch's backward pass without stepping.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// SnapshotParams deep-copies the weights of params into snap, reusing its
// buffers when shapes allow (the watchdog refreshes one snapshot after
// every healthy update, so steady state is copy-only). The returned slice
// is the refreshed snapshot; pass nil the first time.
func SnapshotParams(snap [][]float64, params []*Param) [][]float64 {
	if len(snap) != len(params) {
		snap = make([][]float64, len(params))
	}
	for i, p := range params {
		if len(snap[i]) != len(p.Val.Data) {
			snap[i] = make([]float64, len(p.Val.Data))
		}
		copy(snap[i], p.Val.Data)
	}
	return snap
}

// RestoreParams copies a snapshot taken by SnapshotParams back into the
// weights. It reports false (restoring nothing) when the snapshot does not
// match the parameter set — no snapshot was taken yet, or the caller mixed
// models.
func RestoreParams(params []*Param, snap [][]float64) bool {
	if len(snap) != len(params) {
		return false
	}
	for i, p := range params {
		if len(snap[i]) != len(p.Val.Data) {
			return false
		}
	}
	for i, p := range params {
		copy(p.Val.Data, snap[i])
	}
	return true
}

// ResetMoments drops the Adam moment estimates of every parameter; the
// next optimizer step re-allocates them from zero. Paired with Adam.Reset
// after a watchdog rollback so stale momentum cannot re-apply a poisoned
// direction to the restored weights.
func ResetMoments(params []*Param) {
	for _, p := range params {
		p.m = nil
		p.v = nil
	}
}

// Reset rewinds the optimizer's step counter (bias correction restarts);
// pair with ResetMoments when rolling weights back to a snapshot.
func (a *Adam) Reset() { a.t = 0 }

// ParamsSize returns the total number of weight scalars across params —
// the service model registry prices registry entries (8 bytes per
// float64 weight) against its memory budget with it.
func ParamsSize(params []*Param) int {
	n := 0
	for _, p := range params {
		n += len(p.Val.Data)
	}
	return n
}

// ChecksumSnapshot is ChecksumParams over a SnapshotParams copy, so
// detached weight snapshots (registry entries, drained checkpoints) can
// assert byte-identity without rebuilding a network around them.
func ChecksumSnapshot(snap [][]float64) uint32 {
	crc := crc32.New(crcTable)
	var b [8]byte
	for _, vec := range snap {
		for _, v := range vec {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			crc.Write(b[:])
		}
	}
	return crc.Sum32()
}

// ChecksumParams returns a CRC-32C over the weight bytes of params in
// order — a cheap content fingerprint for "these weights are byte-exactly
// those weights" assertions in checkpoint and rollback tests.
func ChecksumParams(params []*Param) uint32 {
	crc := crc32.New(crcTable)
	var b [8]byte
	for _, p := range params {
		for _, v := range p.Val.Data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			crc.Write(b[:])
		}
	}
	return crc.Sum32()
}
