package nn

import "sync"

// Workspace owns the scratch memory of one compute goroutine. Every
// forward/backward kernel (LSTM.StepInto, SeqNet.StepMaskedInto,
// SeqNet.BackwardInto, ...) draws its gate pre-activations, layer
// boundaries and running BPTT gradients from here instead of allocating,
// so a rollout step performs zero transient allocations once the buffers
// have grown to the network's dimensions.
//
// A Workspace is not safe for concurrent use: each rollout worker owns
// one. The CachePool it references IS concurrency-safe, so workspaces of
// different goroutines may (and should) share one pool — episode tapes
// acquired by workers are recycled by the main goroutine at the batch
// barrier.
type Workspace struct {
	pool *CachePool

	// Forward scratch.
	gates  []float64 // 4H gate pre-activations
	hprod  []float64 // 4H recurrent product
	mid    []float64 // layer-1 → layer-2 boundary (dropout applied here)
	logits []float64 // head output

	// Backward scratch: running BPTT gradients and layer boundaries.
	dpre                   []float64 // 4H gate gradient
	dh1, dc1, dh2, dc2     []float64
	dmid, dheadIn, dxEmbed []float64

	// Inference mode: a non-nil quant snapshot reroutes inference steps of
	// its source network through the int8 kernels (see SetQuantized). The
	// qx/qh buffers hold dynamically quantized activations; qpre holds the
	// gate-interleaved float32 pre-activations.
	quant  *QuantizedSeqNet
	qx, qh []int8
	qpre   []float32
}

// NewWorkspace builds a workspace backed by pool; a nil pool gets a fresh
// private one.
func NewWorkspace(pool *CachePool) *Workspace {
	if pool == nil {
		pool = NewCachePool()
	}
	return &Workspace{pool: pool}
}

// Pool returns the cache pool backing this workspace.
func (w *Workspace) Pool() *CachePool { return w.pool }

// SetQuantized selects the workspace's inference mode: with a non-nil
// snapshot, inference steps (training=false) of the snapshot's source
// network run through the int8 fused kernels instead of the float64 path,
// within the tolerance contract documented in quant.go. Training steps
// and steps of any other network are unaffected, so training always stays
// float64. Pass nil to restore pure float64 inference.
func (w *Workspace) SetQuantized(q *QuantizedSeqNet) { w.quant = q }

// grow returns buf resized to length n, reallocating only when the
// capacity is short. Contents are unspecified.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func growI8(buf []int8, n int) []int8 {
	if cap(buf) < n {
		return make([]int8, n)
	}
	return buf[:n]
}

func growF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// growCopy returns buf resized to len(src) holding a copy of src.
func growCopy(buf, src []float64) []float64 {
	buf = grow(buf, len(src))
	copy(buf, src)
	return buf
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// CachePool recycles the per-episode compute objects — BPTT step caches,
// sequence states and loose float/bool vectors — across goroutines. All
// methods are safe for concurrent use; objects handed out by Get* carry
// unspecified contents unless documented otherwise. The zero amount of
// type-parameter machinery is deliberate: the four freelists cover every
// hot-path shape and keep Put/Get allocation-free.
type CachePool struct {
	mu     sync.Mutex
	caches []*LSTMCache
	states []*SeqState
	vecs   map[int][][]float64
	masks  map[int][][]bool
}

// NewCachePool builds an empty pool.
func NewCachePool() *CachePool {
	return &CachePool{
		vecs:  make(map[int][][]float64),
		masks: make(map[int][][]bool),
	}
}

// GetVec returns a float vector of length n with unspecified contents.
func (p *CachePool) GetVec(n int) []float64 {
	p.mu.Lock()
	if l := p.vecs[n]; len(l) > 0 {
		v := l[len(l)-1]
		p.vecs[n] = l[:len(l)-1]
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	return make([]float64, n)
}

// PutVec returns a vector obtained from GetVec. nil is ignored.
func (p *CachePool) PutVec(v []float64) {
	if v == nil {
		return
	}
	p.mu.Lock()
	p.vecs[len(v)] = append(p.vecs[len(v)], v)
	p.mu.Unlock()
}

func (p *CachePool) getMask(n int) []bool {
	p.mu.Lock()
	if l := p.masks[n]; len(l) > 0 {
		m := l[len(l)-1]
		p.masks[n] = l[:len(l)-1]
		p.mu.Unlock()
		return m
	}
	p.mu.Unlock()
	return make([]bool, n)
}

func (p *CachePool) putMask(m []bool) {
	if m == nil {
		return
	}
	p.mu.Lock()
	p.masks[len(m)] = append(p.masks[len(m)], m)
	p.mu.Unlock()
}

func (p *CachePool) getCache() *LSTMCache {
	p.mu.Lock()
	if n := len(p.caches); n > 0 {
		c := p.caches[n-1]
		p.caches = p.caches[:n-1]
		p.mu.Unlock()
		return c
	}
	p.mu.Unlock()
	return &LSTMCache{}
}

func (p *CachePool) putCache(c *LSTMCache) {
	if c == nil {
		return
	}
	p.mu.Lock()
	p.caches = append(p.caches, c)
	p.mu.Unlock()
}

// GetState returns a SeqState with zeroed recurrent vectors of the given
// hidden size and an empty tape. Pair with Workspace.Recycle to return the
// state (and every tape object it holds) to the pool.
func (p *CachePool) GetState(hidden int) *SeqState {
	p.mu.Lock()
	var st *SeqState
	if n := len(p.states); n > 0 {
		st = p.states[n-1]
		p.states = p.states[:n-1]
	}
	p.mu.Unlock()
	if st == nil {
		st = &SeqState{}
	}
	st.h1 = grow(st.h1, hidden)
	st.c1 = grow(st.c1, hidden)
	st.h2 = grow(st.h2, hidden)
	st.c2 = grow(st.c2, hidden)
	zero(st.h1)
	zero(st.c1)
	zero(st.h2)
	zero(st.c2)
	st.steps = st.steps[:0]
	return st
}

// Recycle returns an episode state and its whole BPTT tape (step caches,
// dropout masks, head inputs) to the workspace's pool. The caller must not
// touch st afterwards.
func (w *Workspace) Recycle(st *SeqState) {
	if st == nil {
		return
	}
	p := w.pool
	for i := range st.steps {
		s := &st.steps[i]
		p.putCache(s.c1)
		p.putCache(s.c2)
		p.putMask(s.midMask)
		p.putMask(s.outMask)
		p.PutVec(s.headIn)
		*s = seqStep{}
	}
	st.steps = st.steps[:0]
	p.mu.Lock()
	p.states = append(p.states, st)
	p.mu.Unlock()
}
