package executor

import (
	"fmt"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
)

// sqlQC shortens the qualified column type used throughout the executor.
type sqlQC = schema.QualifiedColumn

// subResults caches the evaluation of every uncorrelated subquery of one
// statement: IN-sets, EXISTS flags and scalar values.
type subResults struct {
	inSets  map[*sqlast.Select]map[uint64][]sqltypes.Value
	exists  map[*sqlast.Select]bool
	scalars map[*sqlast.Select]sqltypes.Value
}

func newSubResults() *subResults {
	return &subResults{
		inSets:  map[*sqlast.Select]map[uint64][]sqltypes.Value{},
		exists:  map[*sqlast.Select]bool{},
		scalars: map[*sqlast.Select]sqltypes.Value{},
	}
}

// evalSubqueries runs every subquery referenced by the statement once and
// caches the results in the form each predicate kind needs. Work performed
// by subqueries is charged to res.
func (e *Executor) evalSubqueries(st sqlast.Statement, res *Result) (*subResults, error) {
	subs := newSubResults()
	collect := func(p sqlast.Predicate) error {
		switch t := p.(type) {
		case *sqlast.In:
			r, err := e.Select(t.Sub)
			if err != nil {
				return err
			}
			res.Work += r.Work
			set := make(map[uint64][]sqltypes.Value, len(r.Rows))
			for _, row := range r.Rows {
				if len(row) != 1 {
					return fmt.Errorf("executor: IN subquery must project one column")
				}
				v := row[0]
				if v.IsNull() {
					continue
				}
				set[v.Hash()] = append(set[v.Hash()], v)
			}
			subs.inSets[t.Sub] = set
		case *sqlast.Exists:
			r, err := e.Select(t.Sub)
			if err != nil {
				return err
			}
			res.Work += r.Work
			subs.exists[t.Sub] = r.Cardinality > 0
		case *sqlast.CompareSub:
			v, w, err := e.scalarOf(t.Sub)
			if err != nil {
				return err
			}
			res.Work += w
			subs.scalars[t.Sub] = v
		}
		return nil
	}

	var firstErr error
	walk := func(p sqlast.Predicate) {
		sqlast.WalkPredicates(p, func(p sqlast.Predicate) {
			if firstErr == nil {
				firstErr = collect(p)
			}
		})
	}
	switch t := st.(type) {
	case *sqlast.Select:
		walk(t.Where)
		if t.Having != nil && t.Having.Sub != nil {
			v, w, err := e.scalarOf(t.Having.Sub)
			if err != nil {
				return nil, err
			}
			res.Work += w
			subs.scalars[t.Having.Sub] = v
		}
	case *sqlast.Update:
		walk(t.Where)
	case *sqlast.Delete:
		walk(t.Where)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return subs, nil
}

// scalarOf evaluates a scalar subquery: it must return at most one row with
// one column; zero rows yield NULL.
func (e *Executor) scalarOf(sub *sqlast.Select) (sqltypes.Value, float64, error) {
	r, err := e.Select(sub)
	if err != nil {
		return sqltypes.Null, 0, err
	}
	if len(r.Rows) == 0 {
		return sqltypes.Null, r.Work, nil
	}
	if len(r.Rows) > 1 || len(r.Rows[0]) != 1 {
		return sqltypes.Null, r.Work, fmt.Errorf(
			"executor: scalar subquery returned %d rows × %d cols", len(r.Rows), len(r.Rows[0]))
	}
	return r.Rows[0][0], r.Work, nil
}

// scalar looks up a cached scalar subquery value.
func (s *subResults) scalar(sub *sqlast.Select) (sqltypes.Value, error) {
	v, ok := s.scalars[sub]
	if !ok {
		return sqltypes.Null, fmt.Errorf("executor: scalar subquery not pre-evaluated")
	}
	return v, nil
}

// evalPred evaluates a predicate on one joined row.
func (e *Executor) evalPred(p sqlast.Predicate, sc *scope, row []sqltypes.Value, subs *subResults) (bool, error) {
	switch t := p.(type) {
	case *sqlast.Compare:
		s, err := sc.slot(t.Col)
		if err != nil {
			return false, err
		}
		v := row[s]
		if v.IsNull() || t.Value.IsNull() {
			return false, nil
		}
		return t.Op.Eval(sqltypes.Compare(v, t.Value)), nil

	case *sqlast.CompareSub:
		s, err := sc.slot(t.Col)
		if err != nil {
			return false, err
		}
		rhs, err := subs.scalar(t.Sub)
		if err != nil {
			return false, err
		}
		v := row[s]
		if v.IsNull() || rhs.IsNull() {
			return false, nil
		}
		return t.Op.Eval(sqltypes.Compare(v, rhs)), nil

	case *sqlast.Like:
		s, err := sc.slot(t.Col)
		if err != nil {
			return false, err
		}
		v := row[s]
		if v.IsNull() || v.Kind() != sqltypes.KindString {
			return false, nil
		}
		return sqlast.MatchLike(v.Str(), t.Pattern), nil

	case *sqlast.In:
		s, err := sc.slot(t.Col)
		if err != nil {
			return false, err
		}
		set, ok := subs.inSets[t.Sub]
		if !ok {
			return false, fmt.Errorf("executor: IN subquery not pre-evaluated")
		}
		v := row[s]
		if v.IsNull() {
			return false, nil
		}
		found := false
		for _, cand := range set[v.Hash()] {
			if sqltypes.Equal(v, cand) {
				found = true
				break
			}
		}
		if t.Negate {
			return !found, nil
		}
		return found, nil

	case *sqlast.Exists:
		ex, ok := subs.exists[t.Sub]
		if !ok {
			return false, fmt.Errorf("executor: EXISTS subquery not pre-evaluated")
		}
		if t.Negate {
			return !ex, nil
		}
		return ex, nil

	case *sqlast.And:
		l, err := e.evalPred(t.Left, sc, row, subs)
		if err != nil || !l {
			return false, err
		}
		return e.evalPred(t.Right, sc, row, subs)

	case *sqlast.Or:
		l, err := e.evalPred(t.Left, sc, row, subs)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return e.evalPred(t.Right, sc, row, subs)

	case *sqlast.Not:
		v, err := e.evalPred(t.Inner, sc, row, subs)
		if err != nil {
			return false, err
		}
		return !v, nil

	default:
		return false, fmt.Errorf("%w: predicate %T", ErrUnsupported, p)
	}
}
