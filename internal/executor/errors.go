package executor

import (
	"context"
	"errors"

	"learnedsqlgen/internal/sqlast"
)

// Sentinel errors classifying execution refusals. Every statement-shape
// error returned by Execute wraps one of them for errors.Is dispatch;
// cancellation surfaces as the context's own error (context.Canceled /
// context.DeadlineExceeded), never wrapped in these.
var (
	// ErrUnsupported marks statements the executor cannot run: kinds or
	// plan shapes outside the supported grammar, and structurally
	// malformed queries (dangling joins, arity mismatches, ORDER BY or
	// GROUP BY violations).
	ErrUnsupported = errors.New("executor: unsupported statement")
	// ErrUnknownObject marks references to tables or columns that do not
	// exist in the executor's database.
	ErrUnknownObject = errors.New("executor: unknown object")
)

// ExecuteContext is Execute with cancellation: the executor re-checks ctx
// at every pipeline stage boundary (per join edge, before filtering,
// before projection), so a cancelled true-execution reward call abandons a
// large join mid-plan instead of running it to completion. Executors are
// built per call (executor.New(db.Clone())), so carrying the ctx on the
// receiver is safe.
func (e *Executor) ExecuteContext(ctx context.Context, st sqlast.Statement) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prev := e.ctx
	e.ctx = ctx
	defer func() { e.ctx = prev }()
	return e.Execute(st)
}

// checkCtx reports the pending cancellation, if any. Executors built
// without ExecuteContext carry no ctx and never cancel.
func (e *Executor) checkCtx() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}
