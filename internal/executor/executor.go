// Package executor evaluates sqlast statements against an in-memory
// storage.Database. It provides the ground truth that the estimator is
// tested against, validates that FSM-generated queries actually run, and
// backs the optional real-execution reward mode.
//
// Supported plan shapes match the paper's grammar: filtered scans, PK–FK
// hash joins in generation order, hash aggregation with GROUP BY / HAVING,
// ORDER BY, uncorrelated subqueries (scalar, IN, EXISTS) and INSERT /
// UPDATE / DELETE executed against the caller-supplied database (pass a
// Clone to keep benchmark data immutable).
package executor

import (
	"context"
	"fmt"
	"sort"

	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/storage"
)

// Result is the outcome of executing a statement.
type Result struct {
	// Columns are output column labels (SELECT only).
	Columns []string
	// Rows is the output relation (SELECT only).
	Rows []storage.Row
	// Cardinality is len(Rows) for SELECT and the number of affected rows
	// for INSERT/UPDATE/DELETE.
	Cardinality int
	// Work counts the total operator effort (rows scanned + hash probes +
	// rows grouped + rows output); it serves as the "true cost" that the
	// cost model is sanity-checked against.
	Work float64
}

// Executor runs statements against one database.
type Executor struct {
	db *storage.Database
	// ctx is the cancellation context of the current ExecuteContext call;
	// nil when the ctx-less API is used.
	ctx context.Context
}

// New returns an executor over db.
func New(db *storage.Database) *Executor { return &Executor{db: db} }

// Execute runs any supported statement.
func (e *Executor) Execute(st sqlast.Statement) (*Result, error) {
	switch t := st.(type) {
	case *sqlast.Select:
		return e.Select(t)
	case *sqlast.Insert:
		return e.Insert(t)
	case *sqlast.Update:
		return e.Update(t)
	case *sqlast.Delete:
		return e.Delete(t)
	default:
		return nil, fmt.Errorf("%w: statement %T", ErrUnsupported, st)
	}
}

// scope maps qualified columns of a joined row to slot offsets.
type scope struct {
	// offsets[table] is the first slot of the table's columns.
	offsets map[string]int
	tables  []*storage.Table
	width   int
}

func (e *Executor) buildScope(tables []string) (*scope, error) {
	sc := &scope{offsets: map[string]int{}}
	for _, name := range tables {
		t := e.db.Table(name)
		if t == nil {
			return nil, fmt.Errorf("%w: table %q", ErrUnknownObject, name)
		}
		if _, dup := sc.offsets[name]; dup {
			return nil, fmt.Errorf("%w: table %q appears twice in FROM", ErrUnsupported, name)
		}
		sc.offsets[name] = sc.width
		sc.tables = append(sc.tables, t)
		sc.width += len(t.Meta.Columns)
	}
	return sc, nil
}

// slot resolves a qualified column to its offset in the joined row.
func (sc *scope) slot(q sqlQC) (int, error) {
	base, ok := sc.offsets[q.Table]
	if !ok {
		return 0, fmt.Errorf("%w: column %s references table outside FROM scope", ErrUnknownObject, q)
	}
	for _, t := range sc.tables {
		if t.Meta.Name == q.Table {
			ci := t.Meta.ColumnIndex(q.Column)
			if ci < 0 {
				return 0, fmt.Errorf("%w: column %s", ErrUnknownObject, q)
			}
			return base + ci, nil
		}
	}
	return 0, fmt.Errorf("executor: internal scope inconsistency for %s", q)
}

// Select executes a SELECT query.
func (e *Executor) Select(q *sqlast.Select) (*Result, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("%w: SELECT with empty FROM", ErrUnsupported)
	}
	if len(q.Items) == 0 {
		return nil, fmt.Errorf("%w: SELECT with no projection", ErrUnsupported)
	}
	if len(q.Joins) != len(q.Tables)-1 {
		return nil, fmt.Errorf("%w: %d tables need %d join conditions, got %d",
			ErrUnsupported, len(q.Tables), len(q.Tables)-1, len(q.Joins))
	}
	sc, err := e.buildScope(q.Tables)
	if err != nil {
		return nil, err
	}

	res := &Result{}

	// Pre-evaluate uncorrelated subqueries referenced by WHERE / HAVING.
	subs, err := e.evalSubqueries(q, res)
	if err != nil {
		return nil, err
	}

	rows, err := e.joinPipeline(q, sc, res)
	if err != nil {
		return nil, err
	}
	if err := e.checkCtx(); err != nil {
		return nil, err
	}

	// WHERE.
	if q.Where != nil {
		filtered := rows[:0:0]
		for _, r := range rows {
			ok, err := e.evalPred(q.Where, sc, r, subs)
			if err != nil {
				return nil, err
			}
			if ok {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}

	if err := e.checkCtx(); err != nil {
		return nil, err
	}

	// Aggregation / projection.
	out, cols, err := e.project(q, sc, rows, subs, res)
	if err != nil {
		return nil, err
	}

	// ORDER BY.
	if len(q.OrderBy) > 0 {
		slots := make([]int, len(q.OrderBy))
		for i, c := range q.OrderBy {
			// ORDER BY references output columns by their select-list
			// position when possible; otherwise it must be a plain column
			// present in the projection.
			idx := -1
			for j, it := range q.Items {
				if it.Agg == sqlast.AggNone && it.Col == c {
					idx = j
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("%w: ORDER BY column %s not in projection", ErrUnsupported, c)
			}
			slots[i] = idx
		}
		sort.SliceStable(out, func(i, j int) bool {
			for _, s := range slots {
				if cmp := sqltypes.Compare(out[i][s], out[j][s]); cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
		res.Work += float64(len(out))
	}

	res.Columns = cols
	res.Rows = out
	res.Cardinality = len(out)
	res.Work += float64(len(out))
	return res, nil
}

// joinPipeline scans the anchor table and hash-joins each subsequent table.
func (e *Executor) joinPipeline(q *sqlast.Select, sc *scope, res *Result) ([]storage.Row, error) {
	anchor := sc.tables[0]
	rows := make([]storage.Row, 0, anchor.NumRows())
	for _, r := range anchor.Rows() {
		joined := make(storage.Row, 0, sc.width)
		joined = append(joined, r...)
		rows = append(rows, joined)
	}
	res.Work += float64(anchor.NumRows())

	for i := 1; i < len(sc.tables); i++ {
		if err := e.checkCtx(); err != nil {
			return nil, err
		}
		right := sc.tables[i]
		jc := q.Joins[i-1]
		leftSlot, err := sc.slot(sqlQC(jc.Left))
		if err != nil {
			return nil, err
		}
		if jc.Right.Table != right.Meta.Name {
			return nil, fmt.Errorf("%w: join condition %v does not bind table %s",
				ErrUnsupported, jc, right.Meta.Name)
		}
		rci := right.Meta.ColumnIndex(jc.Right.Column)
		if rci < 0 {
			return nil, fmt.Errorf("%w: join column %s", ErrUnknownObject, jc.Right)
		}
		// Build hash table on the right side.
		ht := make(map[uint64][]storage.Row, right.NumRows())
		for _, rr := range right.Rows() {
			v := rr[rci]
			if v.IsNull() {
				continue
			}
			h := v.Hash()
			ht[h] = append(ht[h], rr)
		}
		res.Work += float64(right.NumRows())

		next := make([]storage.Row, 0, len(rows))
		for _, lr := range rows {
			lv := lr[leftSlot]
			if lv.IsNull() {
				continue
			}
			for _, rr := range ht[lv.Hash()] {
				if !sqltypes.Equal(lv, rr[rci]) {
					continue // hash collision
				}
				merged := make(storage.Row, 0, sc.width)
				merged = append(merged, lr...)
				merged = append(merged, rr...)
				next = append(next, merged)
			}
		}
		res.Work += float64(len(rows)) + float64(len(next))
		rows = next
	}
	return rows, nil
}

// project applies grouping/aggregation or plain projection.
func (e *Executor) project(q *sqlast.Select, sc *scope, rows []storage.Row, subs *subResults, res *Result) ([]storage.Row, []string, error) {
	cols := make([]string, len(q.Items))
	for i, it := range q.Items {
		cols[i] = it.SQL()
	}

	hasAgg := q.HasAggregate() || q.Having != nil
	if len(q.GroupBy) == 0 && !hasAgg {
		// Plain projection.
		slots := make([]int, len(q.Items))
		for i, it := range q.Items {
			s, err := sc.slot(sqlQC(it.Col))
			if err != nil {
				return nil, nil, err
			}
			slots[i] = s
		}
		out := make([]storage.Row, len(rows))
		for i, r := range rows {
			pr := make(storage.Row, len(slots))
			for j, s := range slots {
				pr[j] = r[s]
			}
			out[i] = pr
		}
		return out, cols, nil
	}

	// Validate: with aggregation, plain items must appear in GROUP BY.
	gset := map[sqlQC]bool{}
	for _, g := range q.GroupBy {
		gset[sqlQC(g)] = true
	}
	for _, it := range q.Items {
		if it.Agg == sqlast.AggNone && !gset[sqlQC(it.Col)] {
			return nil, nil, fmt.Errorf("%w: non-aggregated column %s not in GROUP BY", ErrUnsupported, it.Col)
		}
	}

	gSlots := make([]int, len(q.GroupBy))
	for i, g := range q.GroupBy {
		s, err := sc.slot(sqlQC(g))
		if err != nil {
			return nil, nil, err
		}
		gSlots[i] = s
	}

	type group struct {
		first storage.Row
		aggs  []aggState
		hcAgg aggState
	}
	itemSlots := make([]int, len(q.Items))
	for i, it := range q.Items {
		s, err := sc.slot(sqlQC(it.Col))
		if err != nil {
			return nil, nil, err
		}
		itemSlots[i] = s
	}
	var havingSlot int
	if q.Having != nil {
		s, err := sc.slot(sqlQC(q.Having.Col))
		if err != nil {
			return nil, nil, err
		}
		havingSlot = s
	}

	groups := map[string]*group{}
	var order []string // deterministic output order: first-seen
	for _, r := range rows {
		key := groupKey(r, gSlots)
		g, ok := groups[key]
		if !ok {
			g = &group{first: r, aggs: make([]aggState, len(q.Items))}
			groups[key] = g
			order = append(order, key)
		}
		for i, it := range q.Items {
			if it.Agg != sqlast.AggNone {
				g.aggs[i].add(it.Agg, r[itemSlots[i]])
			}
		}
		if q.Having != nil {
			g.hcAgg.add(q.Having.Agg, r[havingSlot])
		}
	}
	res.Work += float64(len(rows)) + float64(len(groups))

	out := make([]storage.Row, 0, len(groups))
	for _, key := range order {
		g := groups[key]
		if q.Having != nil {
			hv := g.hcAgg.result(q.Having.Agg)
			var rhs sqltypes.Value
			if q.Having.Sub != nil {
				var err error
				rhs, err = subs.scalar(q.Having.Sub)
				if err != nil {
					return nil, nil, err
				}
			} else {
				rhs = q.Having.Value
			}
			if hv.IsNull() || rhs.IsNull() || !q.Having.Op.Eval(sqltypes.Compare(hv, rhs)) {
				continue
			}
		}
		pr := make(storage.Row, len(q.Items))
		for i, it := range q.Items {
			if it.Agg == sqlast.AggNone {
				pr[i] = g.first[itemSlots[i]]
			} else {
				pr[i] = g.aggs[i].result(it.Agg)
			}
		}
		out = append(out, pr)
	}
	return out, cols, nil
}

func groupKey(r storage.Row, slots []int) string {
	if len(slots) == 0 {
		return "" // single global group
	}
	key := ""
	for _, s := range slots {
		key += r[s].String() + "\x00"
	}
	return key
}

// aggState accumulates one aggregate.
type aggState struct {
	count int64
	sum   float64
	max   sqltypes.Value
	min   sqltypes.Value
	init  bool
}

func (a *aggState) add(fn sqlast.AggFunc, v sqltypes.Value) {
	if v.IsNull() {
		return
	}
	a.count++
	if f, ok := v.AsFloat(); ok {
		a.sum += f
	}
	if !a.init {
		a.max, a.min, a.init = v, v, true
		return
	}
	if sqltypes.Compare(v, a.max) > 0 {
		a.max = v
	}
	if sqltypes.Compare(v, a.min) < 0 {
		a.min = v
	}
}

func (a *aggState) result(fn sqlast.AggFunc) sqltypes.Value {
	switch fn {
	case sqlast.AggCount:
		return sqltypes.NewInt(a.count)
	case sqlast.AggSum:
		if a.count == 0 {
			return sqltypes.Null
		}
		return sqltypes.NewFloat(a.sum)
	case sqlast.AggAvg:
		if a.count == 0 {
			return sqltypes.Null
		}
		return sqltypes.NewFloat(a.sum / float64(a.count))
	case sqlast.AggMax:
		if !a.init {
			return sqltypes.Null
		}
		return a.max
	case sqlast.AggMin:
		if !a.init {
			return sqltypes.Null
		}
		return a.min
	default:
		return sqltypes.Null
	}
}
