package executor

import (
	"fmt"

	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/storage"
)

// Insert executes an INSERT statement against the executor's database.
// Callers that must not mutate benchmark data pass a db.Clone()-backed
// executor.
func (e *Executor) Insert(st *sqlast.Insert) (*Result, error) {
	tab := e.db.Table(st.Table)
	if tab == nil {
		return nil, fmt.Errorf("%w: table %q", ErrUnknownObject, st.Table)
	}
	res := &Result{}
	width := len(tab.Meta.Columns)

	if st.Sub != nil {
		r, err := e.Select(st.Sub)
		if err != nil {
			return nil, err
		}
		res.Work += r.Work
		for _, row := range r.Rows {
			if len(row) != width {
				return nil, fmt.Errorf("%w: INSERT SELECT arity %d != %d columns of %s",
					ErrUnsupported, len(row), width, st.Table)
			}
			cp := make(storage.Row, len(row))
			copy(cp, row)
			if err := tab.Append(cp); err != nil {
				return nil, err
			}
		}
		res.Cardinality = len(r.Rows)
		res.Work += float64(len(r.Rows))
		return res, nil
	}

	if len(st.Values) != width {
		return nil, fmt.Errorf("%w: INSERT arity %d != %d columns of %s",
			ErrUnsupported, len(st.Values), width, st.Table)
	}
	row := make(storage.Row, width)
	copy(row, st.Values)
	if err := tab.Append(row); err != nil {
		return nil, err
	}
	res.Cardinality = 1
	res.Work++
	return res, nil
}

// Update executes an UPDATE statement.
func (e *Executor) Update(st *sqlast.Update) (*Result, error) {
	tab := e.db.Table(st.Table)
	if tab == nil {
		return nil, fmt.Errorf("%w: table %q", ErrUnknownObject, st.Table)
	}
	res := &Result{}
	sc, err := e.buildScope([]string{st.Table})
	if err != nil {
		return nil, err
	}
	subs, err := e.evalSubqueries(st, res)
	if err != nil {
		return nil, err
	}
	sets := make([]struct {
		idx int
		val sqltypes.Value
	}, len(st.Sets))
	for i, s := range st.Sets {
		ci := tab.Meta.ColumnIndex(s.Col)
		if ci < 0 {
			return nil, fmt.Errorf("%w: column %s.%s", ErrUnknownObject, st.Table, s.Col)
		}
		sets[i].idx = ci
		sets[i].val = s.Value
	}

	var evalErr error
	n := tab.Update(
		func(r storage.Row) bool {
			if evalErr != nil || st.Where == nil {
				return st.Where == nil && evalErr == nil
			}
			ok, err := e.evalPred(st.Where, sc, r, subs)
			if err != nil {
				evalErr = err
				return false
			}
			return ok
		},
		func(r storage.Row) storage.Row {
			nr := make(storage.Row, len(r))
			copy(nr, r)
			for _, s := range sets {
				nr[s.idx] = s.val
			}
			return nr
		})
	if evalErr != nil {
		return nil, evalErr
	}
	res.Cardinality = n
	res.Work += float64(tab.NumRows())
	return res, nil
}

// Delete executes a DELETE statement.
func (e *Executor) Delete(st *sqlast.Delete) (*Result, error) {
	tab := e.db.Table(st.Table)
	if tab == nil {
		return nil, fmt.Errorf("%w: table %q", ErrUnknownObject, st.Table)
	}
	res := &Result{}
	sc, err := e.buildScope([]string{st.Table})
	if err != nil {
		return nil, err
	}
	subs, err := e.evalSubqueries(st, res)
	if err != nil {
		return nil, err
	}
	scanned := tab.NumRows()
	var evalErr error
	n := tab.Delete(func(r storage.Row) bool {
		if evalErr != nil {
			return false
		}
		if st.Where == nil {
			return true
		}
		ok, err := e.evalPred(st.Where, sc, r, subs)
		if err != nil {
			evalErr = err
			return false
		}
		return ok
	})
	if evalErr != nil {
		return nil, evalErr
	}
	res.Cardinality = n
	res.Work += float64(scanned)
	return res, nil
}
