package executor

import (
	"math/rand"
	"testing"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/storage"
)

func col(t, c string) schema.QualifiedColumn { return schema.QualifiedColumn{Table: t, Column: c} }

// figure1DB builds the running example of the paper: Score(ID, Course,
// Grade) referencing Student(ID, Name), with deterministic contents.
func figure1DB(t testing.TB) *storage.Database {
	t.Helper()
	s, err := schema.NewBuilder("example").
		Table("Student", "T2",
			schema.Column{Name: "ID", Kind: sqltypes.KindInt, PrimaryKey: true},
			schema.Column{Name: "Name", Kind: sqltypes.KindString},
		).
		Table("Score", "T1",
			schema.Column{Name: "ID", Kind: sqltypes.KindInt},
			schema.Column{Name: "Course", Kind: sqltypes.KindString, Categorical: true},
			schema.Column{Name: "Grade", Kind: sqltypes.KindFloat},
		).
		ForeignKey("Score", "ID", "Student", "ID").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	students := []struct {
		id   int64
		name string
	}{{1, "Ann"}, {2, "Bob"}, {3, "Cyd"}, {4, "Dee"}}
	for _, st := range students {
		if err := db.Table("Student").Append(storage.Row{
			sqltypes.NewInt(st.id), sqltypes.NewString(st.name)}); err != nil {
			t.Fatal(err)
		}
	}
	scores := []struct {
		id     int64
		course string
		grade  float64
	}{
		{1, "math", 95}, {1, "cs", 80},
		{2, "math", 60}, {2, "cs", 70},
		{3, "math", 88}, {4, "cs", 52},
		{4, "math", 45},
	}
	for _, sc := range scores {
		if err := db.Table("Score").Append(storage.Row{
			sqltypes.NewInt(sc.id), sqltypes.NewString(sc.course),
			sqltypes.NewFloat(sc.grade)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func mustSelect(t *testing.T, db *storage.Database, q *sqlast.Select) *Result {
	t.Helper()
	r, err := New(db).Select(q)
	if err != nil {
		t.Fatalf("Select(%s): %v", q.SQL(), err)
	}
	return r
}

func TestScanProjection(t *testing.T) {
	db := figure1DB(t)
	q := &sqlast.Select{
		Tables: []string{"Score"},
		Items:  []sqlast.SelectItem{{Col: col("Score", "ID")}, {Col: col("Score", "Grade")}},
	}
	r := mustSelect(t, db, q)
	if r.Cardinality != 7 {
		t.Errorf("cardinality = %d, want 7", r.Cardinality)
	}
	if len(r.Columns) != 2 || r.Columns[0] != "Score.ID" {
		t.Errorf("columns = %v", r.Columns)
	}
	if r.Work <= 0 {
		t.Error("work must be positive")
	}
}

func TestFilter(t *testing.T) {
	db := figure1DB(t)
	q := &sqlast.Select{
		Tables: []string{"Score"},
		Items:  []sqlast.SelectItem{{Col: col("Score", "ID")}},
		Where: &sqlast.Compare{Col: col("Score", "Grade"), Op: sqlast.OpLt,
			Value: sqltypes.NewFloat(70)},
	}
	r := mustSelect(t, db, q)
	if r.Cardinality != 3 { // 60, 52, 45
		t.Errorf("cardinality = %d, want 3", r.Cardinality)
	}
}

func TestFilterAndOrNot(t *testing.T) {
	db := figure1DB(t)
	grade := func(op sqlast.CmpOp, v float64) sqlast.Predicate {
		return &sqlast.Compare{Col: col("Score", "Grade"), Op: op, Value: sqltypes.NewFloat(v)}
	}
	course := func(c string) sqlast.Predicate {
		return &sqlast.Compare{Col: col("Score", "Course"), Op: sqlast.OpEq, Value: sqltypes.NewString(c)}
	}
	q := &sqlast.Select{
		Tables: []string{"Score"},
		Items:  []sqlast.SelectItem{{Col: col("Score", "ID")}},
		Where: &sqlast.And{
			Left:  course("math"),
			Right: &sqlast.Or{Left: grade(sqlast.OpGe, 90), Right: grade(sqlast.OpLt, 50)},
		},
	}
	if r := mustSelect(t, db, q); r.Cardinality != 2 { // math 95, math 45
		t.Errorf("and/or cardinality = %d, want 2", r.Cardinality)
	}
	q.Where = &sqlast.Not{Inner: course("math")}
	if r := mustSelect(t, db, q); r.Cardinality != 3 { // cs rows
		t.Errorf("not cardinality = %d, want 3", r.Cardinality)
	}
}

func TestJoin(t *testing.T) {
	db := figure1DB(t)
	q := &sqlast.Select{
		Tables: []string{"Score", "Student"},
		Joins:  []sqlast.JoinCond{{Left: col("Score", "ID"), Right: col("Student", "ID")}},
		Items:  []sqlast.SelectItem{{Col: col("Student", "Name")}, {Col: col("Score", "Grade")}},
		Where: &sqlast.Compare{Col: col("Score", "Grade"), Op: sqlast.OpGe,
			Value: sqltypes.NewFloat(80)},
	}
	r := mustSelect(t, db, q)
	if r.Cardinality != 3 { // 95 Ann, 80 Ann, 88 Cyd
		t.Errorf("cardinality = %d, want 3", r.Cardinality)
	}
	names := map[string]bool{}
	for _, row := range r.Rows {
		names[row[0].Str()] = true
	}
	if !names["Ann"] || !names["Cyd"] || names["Bob"] {
		t.Errorf("joined names = %v", names)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := figure1DB(t)
	q := &sqlast.Select{
		Tables: []string{"Score"},
		Items: []sqlast.SelectItem{
			{Col: col("Score", "Course")},
			{Agg: sqlast.AggAvg, Col: col("Score", "Grade")},
			{Agg: sqlast.AggCount, Col: col("Score", "ID")},
		},
		GroupBy: []schema.QualifiedColumn{col("Score", "Course")},
		Having: &sqlast.Having{Agg: sqlast.AggCount, Col: col("Score", "ID"),
			Op: sqlast.OpGe, Value: sqltypes.NewInt(3)},
	}
	r := mustSelect(t, db, q)
	// math has 4 rows, cs has 3 rows — both pass COUNT >= 3.
	if r.Cardinality != 2 {
		t.Fatalf("cardinality = %d, want 2", r.Cardinality)
	}
	for _, row := range r.Rows {
		switch row[0].Str() {
		case "math":
			if row[1].Float() != (95+60+88+45)/4.0 {
				t.Errorf("avg math = %v", row[1])
			}
			if row[2].Int() != 4 {
				t.Errorf("count math = %v", row[2])
			}
		case "cs":
			if row[2].Int() != 3 {
				t.Errorf("count cs = %v", row[2])
			}
		default:
			t.Errorf("unexpected group %v", row[0])
		}
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	db := figure1DB(t)
	q := &sqlast.Select{
		Tables:  []string{"Score"},
		Items:   []sqlast.SelectItem{{Col: col("Score", "Course")}},
		GroupBy: []schema.QualifiedColumn{col("Score", "Course")},
		Having: &sqlast.Having{Agg: sqlast.AggMax, Col: col("Score", "Grade"),
			Op: sqlast.OpGt, Value: sqltypes.NewFloat(90)},
	}
	r := mustSelect(t, db, q)
	if r.Cardinality != 1 || r.Rows[0][0].Str() != "math" {
		t.Errorf("having result = %v", r.Rows)
	}
}

func TestGlobalAggregates(t *testing.T) {
	db := figure1DB(t)
	q := &sqlast.Select{
		Tables: []string{"Score"},
		Items: []sqlast.SelectItem{
			{Agg: sqlast.AggMin, Col: col("Score", "Grade")},
			{Agg: sqlast.AggMax, Col: col("Score", "Grade")},
			{Agg: sqlast.AggSum, Col: col("Score", "Grade")},
		},
	}
	r := mustSelect(t, db, q)
	if r.Cardinality != 1 {
		t.Fatalf("global aggregate must return 1 row, got %d", r.Cardinality)
	}
	row := r.Rows[0]
	if row[0].Float() != 45 || row[1].Float() != 95 {
		t.Errorf("min/max = %v/%v", row[0], row[1])
	}
	if row[2].Float() != 95+80+60+70+88+52+45 {
		t.Errorf("sum = %v", row[2])
	}
}

func TestOrderBy(t *testing.T) {
	db := figure1DB(t)
	q := &sqlast.Select{
		Tables:  []string{"Student"},
		Items:   []sqlast.SelectItem{{Col: col("Student", "Name")}},
		OrderBy: []schema.QualifiedColumn{col("Student", "Name")},
	}
	r := mustSelect(t, db, q)
	want := []string{"Ann", "Bob", "Cyd", "Dee"}
	for i, w := range want {
		if r.Rows[i][0].Str() != w {
			t.Fatalf("order[%d] = %v, want %v", i, r.Rows[i][0], w)
		}
	}
}

func TestInSubquery(t *testing.T) {
	db := figure1DB(t)
	inner := &sqlast.Select{
		Tables: []string{"Student"},
		Items:  []sqlast.SelectItem{{Col: col("Student", "ID")}},
		Where: &sqlast.Compare{Col: col("Student", "Name"), Op: sqlast.OpEq,
			Value: sqltypes.NewString("Ann")},
	}
	q := &sqlast.Select{
		Tables: []string{"Score"},
		Items:  []sqlast.SelectItem{{Col: col("Score", "Grade")}},
		Where:  &sqlast.In{Col: col("Score", "ID"), Sub: inner},
	}
	if r := mustSelect(t, db, q); r.Cardinality != 2 { // Ann's two scores
		t.Errorf("IN cardinality = %d, want 2", r.Cardinality)
	}
	q.Where = &sqlast.In{Col: col("Score", "ID"), Sub: inner, Negate: true}
	if r := mustSelect(t, db, q); r.Cardinality != 5 {
		t.Errorf("NOT IN cardinality = %d, want 5", r.Cardinality)
	}
}

func TestExistsSubquery(t *testing.T) {
	db := figure1DB(t)
	empty := &sqlast.Select{
		Tables: []string{"Student"},
		Items:  []sqlast.SelectItem{{Col: col("Student", "ID")}},
		Where: &sqlast.Compare{Col: col("Student", "Name"), Op: sqlast.OpEq,
			Value: sqltypes.NewString("Zed")},
	}
	q := &sqlast.Select{
		Tables: []string{"Score"},
		Items:  []sqlast.SelectItem{{Col: col("Score", "ID")}},
		Where:  &sqlast.Exists{Sub: empty},
	}
	if r := mustSelect(t, db, q); r.Cardinality != 0 {
		t.Errorf("EXISTS(empty) cardinality = %d, want 0", r.Cardinality)
	}
	q.Where = &sqlast.Exists{Sub: empty, Negate: true}
	if r := mustSelect(t, db, q); r.Cardinality != 7 {
		t.Errorf("NOT EXISTS(empty) cardinality = %d, want 7", r.Cardinality)
	}
}

func TestScalarSubqueryCompare(t *testing.T) {
	db := figure1DB(t)
	avg := &sqlast.Select{
		Tables: []string{"Score"},
		Items:  []sqlast.SelectItem{{Agg: sqlast.AggAvg, Col: col("Score", "Grade")}},
	}
	q := &sqlast.Select{
		Tables: []string{"Score"},
		Items:  []sqlast.SelectItem{{Col: col("Score", "Grade")}},
		Where:  &sqlast.CompareSub{Col: col("Score", "Grade"), Op: sqlast.OpGt, Sub: avg},
	}
	r := mustSelect(t, db, q)
	// avg = 490/7 = 70; grades above: 95, 80, 88 → 3.
	if r.Cardinality != 3 {
		t.Errorf("scalar-sub cardinality = %d, want 3", r.Cardinality)
	}
}

func TestHavingScalarSubquery(t *testing.T) {
	db := figure1DB(t)
	avgAll := &sqlast.Select{
		Tables: []string{"Score"},
		Items:  []sqlast.SelectItem{{Agg: sqlast.AggAvg, Col: col("Score", "Grade")}},
	}
	q := &sqlast.Select{
		Tables:  []string{"Score"},
		Items:   []sqlast.SelectItem{{Col: col("Score", "Course")}},
		GroupBy: []schema.QualifiedColumn{col("Score", "Course")},
		Having: &sqlast.Having{Agg: sqlast.AggAvg, Col: col("Score", "Grade"),
			Op: sqlast.OpGt, Sub: avgAll},
	}
	r := mustSelect(t, db, q)
	// avg(all)=70; avg(math)=72, avg(cs)=67.33 → only math passes.
	if r.Cardinality != 1 || r.Rows[0][0].Str() != "math" {
		t.Errorf("having-sub result = %v", r.Rows)
	}
}

func TestSelectErrors(t *testing.T) {
	db := figure1DB(t)
	ex := New(db)
	bad := []*sqlast.Select{
		{Tables: nil, Items: []sqlast.SelectItem{{Col: col("Score", "ID")}}},
		{Tables: []string{"Score"}, Items: nil},
		{Tables: []string{"Nope"}, Items: []sqlast.SelectItem{{Col: col("Nope", "ID")}}},
		{Tables: []string{"Score", "Student"}, Items: []sqlast.SelectItem{{Col: col("Score", "ID")}}}, // missing join
		{Tables: []string{"Score"}, Items: []sqlast.SelectItem{{Col: col("Student", "Name")}}},        // out of scope
		{Tables: []string{"Score"}, Items: []sqlast.SelectItem{{Col: col("Score", "Nope")}}},
		{Tables: []string{"Score", "Score"},
			Joins: []sqlast.JoinCond{{Left: col("Score", "ID"), Right: col("Score", "ID")}},
			Items: []sqlast.SelectItem{{Col: col("Score", "ID")}}}, // duplicate table
		{Tables: []string{"Score"},
			Items:   []sqlast.SelectItem{{Col: col("Score", "ID")}, {Agg: sqlast.AggMax, Col: col("Score", "Grade")}},
			GroupBy: nil}, // mixed agg/plain without GROUP BY
	}
	for _, q := range bad {
		if _, err := ex.Select(q); err == nil {
			t.Errorf("Select(%s) must fail", q.SQL())
		}
	}
}

func TestInsertValuesAndSelect(t *testing.T) {
	db := figure1DB(t).Clone()
	ex := New(db)
	r, err := ex.Insert(&sqlast.Insert{Table: "Student", Values: []sqltypes.Value{
		sqltypes.NewInt(9), sqltypes.NewString("Eve")}})
	if err != nil || r.Cardinality != 1 {
		t.Fatalf("insert: %v, %v", r, err)
	}
	if db.Table("Student").NumRows() != 5 {
		t.Error("row not inserted")
	}

	// INSERT ... (SELECT) — duplicate all students.
	sub := &sqlast.Select{
		Tables: []string{"Student"},
		Items:  []sqlast.SelectItem{{Col: col("Student", "ID")}, {Col: col("Student", "Name")}},
	}
	r, err = ex.Insert(&sqlast.Insert{Table: "Student", Sub: sub})
	if err != nil || r.Cardinality != 5 {
		t.Fatalf("insert-select: %v, %v", r, err)
	}
	if db.Table("Student").NumRows() != 10 {
		t.Errorf("rows = %d, want 10", db.Table("Student").NumRows())
	}
}

func TestInsertErrors(t *testing.T) {
	db := figure1DB(t).Clone()
	ex := New(db)
	if _, err := ex.Insert(&sqlast.Insert{Table: "Nope"}); err == nil {
		t.Error("unknown table must fail")
	}
	if _, err := ex.Insert(&sqlast.Insert{Table: "Student",
		Values: []sqltypes.Value{sqltypes.NewInt(1)}}); err == nil {
		t.Error("arity mismatch must fail")
	}
	badSub := &sqlast.Select{
		Tables: []string{"Student"},
		Items:  []sqlast.SelectItem{{Col: col("Student", "ID")}},
	}
	if _, err := ex.Insert(&sqlast.Insert{Table: "Student", Sub: badSub}); err == nil {
		t.Error("subquery arity mismatch must fail")
	}
}

func TestUpdate(t *testing.T) {
	db := figure1DB(t).Clone()
	ex := New(db)
	r, err := ex.Update(&sqlast.Update{
		Table: "Score",
		Sets:  []sqlast.SetClause{{Col: "Grade", Value: sqltypes.NewFloat(0)}},
		Where: &sqlast.Compare{Col: col("Score", "Grade"), Op: sqlast.OpLt,
			Value: sqltypes.NewFloat(60)},
	})
	if err != nil || r.Cardinality != 2 { // 52 and 45
		t.Fatalf("update: %+v, %v", r, err)
	}
	zeroes := 0
	for _, row := range db.Table("Score").Rows() {
		if row[2].Float() == 0 {
			zeroes++
		}
	}
	if zeroes != 2 {
		t.Errorf("zeroed rows = %d", zeroes)
	}
}

func TestUpdateNoWhereUpdatesAll(t *testing.T) {
	db := figure1DB(t).Clone()
	r, err := New(db).Update(&sqlast.Update{
		Table: "Score",
		Sets:  []sqlast.SetClause{{Col: "Grade", Value: sqltypes.NewFloat(1)}},
	})
	if err != nil || r.Cardinality != 7 {
		t.Fatalf("update all: %+v, %v", r, err)
	}
}

func TestUpdateErrors(t *testing.T) {
	db := figure1DB(t).Clone()
	ex := New(db)
	if _, err := ex.Update(&sqlast.Update{Table: "Nope"}); err == nil {
		t.Error("unknown table must fail")
	}
	if _, err := ex.Update(&sqlast.Update{Table: "Score",
		Sets: []sqlast.SetClause{{Col: "Nope", Value: sqltypes.NewInt(1)}}}); err == nil {
		t.Error("unknown set column must fail")
	}
}

func TestDeleteWithSubquery(t *testing.T) {
	db := figure1DB(t).Clone()
	inner := &sqlast.Select{
		Tables: []string{"Student"},
		Items:  []sqlast.SelectItem{{Col: col("Student", "ID")}},
		Where: &sqlast.Compare{Col: col("Student", "Name"), Op: sqlast.OpEq,
			Value: sqltypes.NewString("Ann")},
	}
	r, err := New(db).Delete(&sqlast.Delete{
		Table: "Score",
		Where: &sqlast.In{Col: col("Score", "ID"), Sub: inner},
	})
	if err != nil || r.Cardinality != 2 {
		t.Fatalf("delete: %+v, %v", r, err)
	}
	if db.Table("Score").NumRows() != 5 {
		t.Errorf("rows remaining = %d", db.Table("Score").NumRows())
	}
}

func TestDeleteAll(t *testing.T) {
	db := figure1DB(t).Clone()
	r, err := New(db).Delete(&sqlast.Delete{Table: "Score"})
	if err != nil || r.Cardinality != 7 {
		t.Fatalf("delete all: %+v, %v", r, err)
	}
}

func TestExecuteDispatch(t *testing.T) {
	db := figure1DB(t).Clone()
	ex := New(db)
	stmts := []sqlast.Statement{
		&sqlast.Select{Tables: []string{"Student"}, Items: []sqlast.SelectItem{{Col: col("Student", "ID")}}},
		&sqlast.Insert{Table: "Student", Values: []sqltypes.Value{sqltypes.NewInt(10), sqltypes.NewString("X")}},
		&sqlast.Update{Table: "Student", Sets: []sqlast.SetClause{{Col: "Name", Value: sqltypes.NewString("Y")}}},
		&sqlast.Delete{Table: "Student"},
	}
	for _, st := range stmts {
		if _, err := ex.Execute(st); err != nil {
			t.Errorf("Execute(%T): %v", st, err)
		}
	}
}

// TestFilterMatchesBruteForce cross-checks the executor's filtered scan
// against a direct row loop for many random predicates.
func TestFilterMatchesBruteForce(t *testing.T) {
	db := figure1DB(t)
	rng := rand.New(rand.NewSource(7))
	tab := db.Table("Score")
	for trial := 0; trial < 200; trial++ {
		op := []sqlast.CmpOp{sqlast.OpLt, sqlast.OpGt, sqlast.OpLe, sqlast.OpGe, sqlast.OpEq, sqlast.OpNe}[rng.Intn(6)]
		v := sqltypes.NewFloat(float64(rng.Intn(110)))
		q := &sqlast.Select{
			Tables: []string{"Score"},
			Items:  []sqlast.SelectItem{{Col: col("Score", "ID")}},
			Where:  &sqlast.Compare{Col: col("Score", "Grade"), Op: op, Value: v},
		}
		r := mustSelect(t, db, q)
		want := 0
		for _, row := range tab.Rows() {
			if op.Eval(sqltypes.Compare(row[2], v)) {
				want++
			}
		}
		if r.Cardinality != want {
			t.Fatalf("trial %d (%s): got %d, want %d", trial, q.SQL(), r.Cardinality, want)
		}
	}
}

// TestJoinMatchesBruteForce cross-checks the hash join against a nested
// loop join.
func TestJoinMatchesBruteForce(t *testing.T) {
	db := figure1DB(t)
	q := &sqlast.Select{
		Tables: []string{"Score", "Student"},
		Joins:  []sqlast.JoinCond{{Left: col("Score", "ID"), Right: col("Student", "ID")}},
		Items:  []sqlast.SelectItem{{Col: col("Score", "ID")}},
	}
	r := mustSelect(t, db, q)
	want := 0
	for _, sr := range db.Table("Score").Rows() {
		for _, st := range db.Table("Student").Rows() {
			if sqltypes.Equal(sr[0], st[0]) {
				want++
			}
		}
	}
	if r.Cardinality != want {
		t.Errorf("join cardinality = %d, want %d", r.Cardinality, want)
	}
}

func TestLikeEvaluation(t *testing.T) {
	db := figure1DB(t)
	q := &sqlast.Select{
		Tables: []string{"Student"},
		Items:  []sqlast.SelectItem{{Col: col("Student", "Name")}},
		Where:  &sqlast.Like{Col: col("Student", "Name"), Pattern: "%e%"},
	}
	r := mustSelect(t, db, q)
	// Names: Ann, Bob, Cyd, Dee → only Dee contains 'e'.
	if r.Cardinality != 1 || r.Rows[0][0].Str() != "Dee" {
		t.Errorf("LIKE result = %v", r.Rows)
	}
	q.Where = &sqlast.Like{Col: col("Student", "Name"), Pattern: "%"}
	if r := mustSelect(t, db, q); r.Cardinality != 4 {
		t.Errorf("LIKE %% cardinality = %d", r.Cardinality)
	}
	// LIKE on a non-string column matches nothing.
	q.Where = &sqlast.Like{Col: col("Student", "ID"), Pattern: "%1%"}
	if r := mustSelect(t, db, q); r.Cardinality != 0 {
		t.Errorf("LIKE on int column = %d rows", r.Cardinality)
	}
	// NOT (LIKE) composes.
	q.Where = &sqlast.Not{Inner: &sqlast.Like{Col: col("Student", "Name"), Pattern: "%e%"}}
	if r := mustSelect(t, db, q); r.Cardinality != 3 {
		t.Errorf("NOT LIKE cardinality = %d", r.Cardinality)
	}
}
