package executor

import (
	"context"

	"learnedsqlgen/internal/sqlast"
)

// Backend is the seam true-execution rewards run through. The RL
// environment's default implementation builds a fresh Executor over a
// database snapshot per call; decorators compose around it the same way
// they do around estimator.Backend — resilience (retry + circuit breaker)
// and fault injection in chaos tests.
type Backend interface {
	ExecuteContext(ctx context.Context, st sqlast.Statement) (*Result, error)
}
