// Package stats computes per-column statistics over a storage.Database:
// row counts, NDV, min/max/mean, equi-depth histograms, most-common values
// and sorted samples. The estimator consumes only these statistics (never
// raw rows), mirroring how a real optimizer's estimator works; the value
// sampler implements the §4.1 "sample k values per numerical attribute"
// step that builds the token vocabulary (the η knob of Figure 12).
package stats

import (
	"math/rand"
	"sort"

	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/storage"
)

// Bucket is one equi-depth histogram bucket over numeric values.
// Lo is inclusive; Hi is inclusive for the last bucket.
type Bucket struct {
	Lo, Hi float64
	Count  int64
	NDV    int64
}

// MCV is a most-common value with its frequency.
type MCV struct {
	Value sqltypes.Value
	Count int64
}

// ColumnStats summarizes one column.
type ColumnStats struct {
	Kind      sqltypes.Kind
	RowCount  int64
	NullCount int64
	NDV       int64
	// Min/Max/Mean are set for numeric columns.
	Min, Max, Mean float64
	// Histogram is an equi-depth histogram over numeric non-null values.
	Histogram []Bucket
	// MCVs are the most common values (all kinds), most frequent first.
	MCVs []MCV
	// SortedSample is an ordered sample of non-null values used for range
	// selectivity on string columns and for bounded-domain checks.
	SortedSample []sqltypes.Value
}

const (
	defaultBuckets = 64
	defaultMCVs    = 16
	defaultSample  = 256
)

// TableStats summarizes one table.
type TableStats struct {
	RowCount int64
	Columns  []ColumnStats
}

// Database maps table names to their statistics.
type Database struct {
	Tables map[string]*TableStats
}

// Collect computes statistics for every table of db.
func Collect(db *storage.Database) *Database {
	out := &Database{Tables: map[string]*TableStats{}}
	for _, t := range db.Tables() {
		ts := &TableStats{RowCount: int64(t.NumRows())}
		ts.Columns = make([]ColumnStats, len(t.Meta.Columns))
		for ci := range t.Meta.Columns {
			ts.Columns[ci] = collectColumn(t, ci)
		}
		out.Tables[t.Meta.Name] = ts
	}
	return out
}

// Table returns statistics for the named table, or nil.
func (d *Database) Table(name string) *TableStats {
	return d.Tables[name]
}

// Column returns statistics for table.column, or nil.
func (d *Database) Column(table string, colIdx int) *ColumnStats {
	t := d.Tables[table]
	if t == nil || colIdx < 0 || colIdx >= len(t.Columns) {
		return nil
	}
	return &t.Columns[colIdx]
}

func collectColumn(t *storage.Table, ci int) ColumnStats {
	cs := ColumnStats{
		Kind:     t.Meta.Columns[ci].Kind,
		RowCount: int64(t.NumRows()),
	}
	counts := map[sqltypes.Value]int64{}
	var nums []float64
	var sum float64
	for _, r := range t.Rows() {
		v := r[ci]
		if v.IsNull() {
			cs.NullCount++
			continue
		}
		counts[v]++
		if f, ok := v.AsFloat(); ok {
			nums = append(nums, f)
			sum += f
		}
	}
	cs.NDV = int64(len(counts))

	// MCVs: top-k by count (ties broken by value order for determinism).
	type vc struct {
		v sqltypes.Value
		c int64
	}
	all := make([]vc, 0, len(counts))
	for v, c := range counts {
		all = append(all, vc{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return sqltypes.Compare(all[i].v, all[j].v) < 0
	})
	k := defaultMCVs
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		cs.MCVs = append(cs.MCVs, MCV{all[i].v, all[i].c})
	}

	// Sorted sample: every NDV-th distinct value up to defaultSample.
	distinct := make([]sqltypes.Value, 0, len(counts))
	for v := range counts {
		distinct = append(distinct, v)
	}
	sort.Slice(distinct, func(i, j int) bool { return sqltypes.Compare(distinct[i], distinct[j]) < 0 })
	if len(distinct) <= defaultSample {
		cs.SortedSample = distinct
	} else {
		step := float64(len(distinct)) / float64(defaultSample)
		for i := 0; i < defaultSample; i++ {
			cs.SortedSample = append(cs.SortedSample, distinct[int(float64(i)*step)])
		}
	}

	if len(nums) > 0 && cs.Kind.Numeric() {
		sort.Float64s(nums)
		cs.Min = nums[0]
		cs.Max = nums[len(nums)-1]
		cs.Mean = sum / float64(len(nums))
		cs.Histogram = buildHistogram(nums, defaultBuckets)
	}
	return cs
}

// buildHistogram creates an equi-depth histogram over sorted values.
func buildHistogram(sorted []float64, buckets int) []Bucket {
	n := len(sorted)
	if n == 0 {
		return nil
	}
	if buckets > n {
		buckets = n
	}
	out := make([]Bucket, 0, buckets)
	per := n / buckets
	rem := n % buckets
	idx := 0
	for b := 0; b < buckets; b++ {
		cnt := per
		if b < rem {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		lo := sorted[idx]
		hi := sorted[idx+cnt-1]
		ndv := int64(1)
		for i := idx + 1; i < idx+cnt; i++ {
			if sorted[i] != sorted[i-1] {
				ndv++
			}
		}
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: int64(cnt), NDV: ndv})
		idx += cnt
	}
	return out
}

// SelectivityEq estimates the fraction of rows where the column equals v.
func (cs *ColumnStats) SelectivityEq(v sqltypes.Value) float64 {
	if cs.RowCount == 0 || cs.NDV == 0 || v.IsNull() {
		return 0
	}
	var mcvRows int64
	for _, m := range cs.MCVs {
		if sqltypes.Equal(m.Value, v) {
			return float64(m.Count) / float64(cs.RowCount)
		}
		mcvRows += m.Count
	}
	restNDV := cs.NDV - int64(len(cs.MCVs))
	if restNDV <= 0 {
		// Every distinct value is an MCV and v matched none of them.
		return 0
	}
	restRows := cs.RowCount - cs.NullCount - mcvRows
	if restRows <= 0 {
		return 0
	}
	return float64(restRows) / float64(restNDV) / float64(cs.RowCount)
}

// SelectivityLt estimates the fraction of rows strictly below v.
func (cs *ColumnStats) SelectivityLt(v sqltypes.Value) float64 {
	if cs.RowCount == 0 || v.IsNull() {
		return 0
	}
	if f, ok := v.AsFloat(); ok && len(cs.Histogram) > 0 {
		return cs.histogramLt(f)
	}
	// Fall back to rank within the sorted sample (string columns).
	n := len(cs.SortedSample)
	if n == 0 {
		return 0
	}
	rank := sort.Search(n, func(i int) bool {
		return sqltypes.Compare(cs.SortedSample[i], v) >= 0
	})
	return float64(rank) / float64(n)
}

func (cs *ColumnStats) histogramLt(v float64) float64 {
	var below float64
	total := float64(cs.RowCount - cs.NullCount)
	if total <= 0 {
		return 0
	}
	for _, b := range cs.Histogram {
		switch {
		case v <= b.Lo:
			// nothing from this bucket onward
			return below / total
		case v > b.Hi:
			below += float64(b.Count)
		default:
			// Linear interpolation inside the bucket.
			span := b.Hi - b.Lo
			frac := 0.5
			if span > 0 {
				frac = (v - b.Lo) / span
			}
			below += float64(b.Count) * frac
			return below / total
		}
	}
	return below / total
}

// Selectivity estimates the fraction of rows satisfying `col op v`.
// op semantics match sqlast.CmpOp ordering on sqltypes.Compare.
func (cs *ColumnStats) Selectivity(op Op, v sqltypes.Value) float64 {
	eq := cs.SelectivityEq(v)
	lt := cs.SelectivityLt(v)
	var s float64
	switch op {
	case OpEq:
		s = eq
	case OpNe:
		s = 1 - eq
	case OpLt:
		s = lt
	case OpLe:
		s = lt + eq
	case OpGt:
		s = 1 - lt - eq
	case OpGe:
		s = 1 - lt
	default:
		s = 1.0 / 3.0
	}
	return clamp01(s)
}

// SelectivityLike estimates the fraction of rows matching a LIKE pattern
// by evaluating the matcher over the column's MCVs (row-weighted) and the
// sorted distinct-value sample (for the non-MCV remainder). match is
// injected so stats stays independent of the AST layer.
func (cs *ColumnStats) SelectivityLike(pattern string, match func(s, pattern string) bool) float64 {
	if cs.RowCount == 0 {
		return 0
	}
	var mcvRows, mcvHit int64
	mcvSet := map[sqltypes.Value]bool{}
	for _, m := range cs.MCVs {
		mcvSet[m.Value] = true
		mcvRows += m.Count
		if m.Value.Kind() == sqltypes.KindString && match(m.Value.Str(), pattern) {
			mcvHit += m.Count
		}
	}
	sel := float64(mcvHit) / float64(cs.RowCount)

	// Non-MCV remainder: distinct-sample match fraction.
	sampled, hit := 0, 0
	for _, v := range cs.SortedSample {
		if mcvSet[v] {
			continue
		}
		sampled++
		if v.Kind() == sqltypes.KindString && match(v.Str(), pattern) {
			hit++
		}
	}
	restRows := cs.RowCount - cs.NullCount - mcvRows
	if sampled > 0 && restRows > 0 {
		sel += float64(hit) / float64(sampled) * float64(restRows) / float64(cs.RowCount)
	}
	return clamp01(sel)
}

// Op mirrors sqlast.CmpOp without importing it (stats stays independent of
// the AST layer).
type Op uint8

// Comparison operators for Selectivity.
const (
	OpInvalid Op = iota
	OpLt
	OpGt
	OpLe
	OpGe
	OpEq
	OpNe
)

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// SampleValues returns up to k values for the token vocabulary. For
// categorical columns it returns the full distinct domain regardless of k
// (the paper treats categorical values exhaustively); otherwise it samples
// without replacement from the column's distinct values, deterministically
// under rng. Returned values are sorted for stable vocabularies.
func SampleValues(t *storage.Table, colIdx int, k int, categorical bool, rng *rand.Rand) []sqltypes.Value {
	seen := map[sqltypes.Value]bool{}
	for _, r := range t.Rows() {
		v := r[colIdx]
		if !v.IsNull() {
			seen[v] = true
		}
	}
	distinct := make([]sqltypes.Value, 0, len(seen))
	for v := range seen {
		distinct = append(distinct, v)
	}
	sort.Slice(distinct, func(i, j int) bool { return sqltypes.Compare(distinct[i], distinct[j]) < 0 })
	if categorical || len(distinct) <= k {
		return distinct
	}
	// Partial Fisher–Yates for a k-subset, then re-sort.
	idx := rng.Perm(len(distinct))[:k]
	sort.Ints(idx)
	out := make([]sqltypes.Value, 0, k)
	for _, i := range idx {
		out = append(out, distinct[i])
	}
	return out
}
