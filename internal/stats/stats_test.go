package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/storage"
)

// numericDB builds one table T(v INT) holding values 0..999 plus a heavy
// hitter value 5 repeated 100 extra times.
func numericDB(t testing.TB) *storage.Database {
	t.Helper()
	s, err := schema.NewBuilder("t").
		Table("T", "",
			schema.Column{Name: "v", Kind: sqltypes.KindInt},
			schema.Column{Name: "c", Kind: sqltypes.KindString, Categorical: true},
			schema.Column{Name: "s", Kind: sqltypes.KindString},
		).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	tab := db.Table("T")
	cats := []string{"red", "green", "blue"}
	for i := 0; i < 1000; i++ {
		if err := tab.Append(storage.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(cats[i%3]),
			sqltypes.NewString(string(rune('a' + i%26))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := tab.Append(storage.Row{
			sqltypes.NewInt(5),
			sqltypes.NewString("red"),
			sqltypes.NewString("zz"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCollectBasics(t *testing.T) {
	db := numericDB(t)
	d := Collect(db)
	ts := d.Table("T")
	if ts == nil || ts.RowCount != 1100 {
		t.Fatalf("table stats = %+v", ts)
	}
	cs := d.Column("T", 0)
	if cs.NDV != 1000 {
		t.Errorf("NDV = %d, want 1000", cs.NDV)
	}
	if cs.Min != 0 || cs.Max != 999 {
		t.Errorf("min/max = %v/%v", cs.Min, cs.Max)
	}
	wantMean := (999.0*1000/2 + 5*100) / 1100
	if math.Abs(cs.Mean-wantMean) > 1e-9 {
		t.Errorf("mean = %v, want %v", cs.Mean, wantMean)
	}
	if len(cs.Histogram) == 0 {
		t.Error("numeric column must have a histogram")
	}
	if d.Column("T", 99) != nil || d.Column("Nope", 0) != nil {
		t.Error("out-of-range column lookups must be nil")
	}
}

func TestHistogramCountsSumToRows(t *testing.T) {
	db := numericDB(t)
	cs := Collect(db).Column("T", 0)
	var sum int64
	for _, b := range cs.Histogram {
		sum += b.Count
		if b.Hi < b.Lo {
			t.Errorf("bucket inverted: %+v", b)
		}
		if b.NDV < 1 || b.NDV > b.Count {
			t.Errorf("bucket NDV out of range: %+v", b)
		}
	}
	if sum != cs.RowCount-cs.NullCount {
		t.Errorf("histogram total = %d, want %d", sum, cs.RowCount)
	}
}

func TestMCVCapturesHeavyHitter(t *testing.T) {
	cs := Collect(numericDB(t)).Column("T", 0)
	if len(cs.MCVs) == 0 {
		t.Fatal("no MCVs")
	}
	top := cs.MCVs[0]
	if top.Value.Int() != 5 || top.Count != 101 {
		t.Errorf("top MCV = %+v, want value 5 count 101", top)
	}
}

func TestSelectivityEqHeavyVsRare(t *testing.T) {
	cs := Collect(numericDB(t)).Column("T", 0)
	heavy := cs.SelectivityEq(sqltypes.NewInt(5))
	if math.Abs(heavy-101.0/1100) > 1e-9 {
		t.Errorf("heavy eq sel = %v, want %v", heavy, 101.0/1100)
	}
	rare := cs.SelectivityEq(sqltypes.NewInt(777))
	trueSel := 1.0 / 1100
	if rare <= 0 || rare > 10*trueSel {
		t.Errorf("rare eq sel = %v, want near %v", rare, trueSel)
	}
	if cs.SelectivityEq(sqltypes.Null) != 0 {
		t.Error("NULL eq selectivity must be 0")
	}
}

func TestSelectivityRangeAccuracy(t *testing.T) {
	db := numericDB(t)
	cs := Collect(db).Column("T", 0)
	tab := db.Table("T")
	for _, v := range []int64{0, 5, 100, 500, 999, 1500, -5} {
		val := sqltypes.NewInt(v)
		want := 0.0
		for _, r := range tab.Rows() {
			if r[0].Int() < v {
				want++
			}
		}
		want /= float64(tab.NumRows())
		got := cs.SelectivityLt(val)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("Lt(%d): got %.4f, want %.4f", v, got, want)
		}
	}
}

func TestSelectivityOpsConsistent(t *testing.T) {
	cs := Collect(numericDB(t)).Column("T", 0)
	v := sqltypes.NewInt(500)
	lt := cs.Selectivity(OpLt, v)
	le := cs.Selectivity(OpLe, v)
	gt := cs.Selectivity(OpGt, v)
	ge := cs.Selectivity(OpGe, v)
	eq := cs.Selectivity(OpEq, v)
	ne := cs.Selectivity(OpNe, v)
	if le < lt {
		t.Error("le < lt")
	}
	if math.Abs((lt+eq+gt)-1) > 1e-6 {
		t.Errorf("lt+eq+gt = %v, want 1", lt+eq+gt)
	}
	if math.Abs((eq+ne)-1) > 1e-6 {
		t.Errorf("eq+ne = %v", eq+ne)
	}
	if math.Abs(ge-(1-lt)) > 1e-9 {
		t.Errorf("ge = %v, want %v", ge, 1-lt)
	}
	if got := cs.Selectivity(OpInvalid, v); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("unknown op default = %v", got)
	}
}

func TestStringRangeSelectivityViaSample(t *testing.T) {
	cs := Collect(numericDB(t)).Column("T", 2)
	low := cs.SelectivityLt(sqltypes.NewString("a"))
	high := cs.SelectivityLt(sqltypes.NewString("~"))
	if low != 0 {
		t.Errorf("nothing below 'a': %v", low)
	}
	if high != 1 {
		t.Errorf("everything below '~': %v", high)
	}
	mid := cs.SelectivityLt(sqltypes.NewString("n"))
	if mid <= 0 || mid >= 1 {
		t.Errorf("mid selectivity = %v", mid)
	}
}

func TestSelectivityBoundsProperty(t *testing.T) {
	cs := Collect(numericDB(t)).Column("T", 0)
	f := func(raw int64, opRaw uint8) bool {
		op := Op(opRaw%6) + 1
		s := cs.Selectivity(op, sqltypes.NewInt(raw%3000))
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSelectivityLtMonotoneProperty(t *testing.T) {
	cs := Collect(numericDB(t)).Column("T", 0)
	f := func(a, b int64) bool {
		x, y := a%2000, b%2000
		if x > y {
			x, y = y, x
		}
		return cs.SelectivityLt(sqltypes.NewInt(x)) <= cs.SelectivityLt(sqltypes.NewInt(y))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSampleValues(t *testing.T) {
	db := numericDB(t)
	tab := db.Table("T")
	rng := rand.New(rand.NewSource(1))

	vals := SampleValues(tab, 0, 50, false, rng)
	if len(vals) != 50 {
		t.Fatalf("sample size = %d, want 50", len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if sqltypes.Compare(vals[i-1], vals[i]) >= 0 {
			t.Fatal("sample must be sorted and distinct")
		}
	}

	// Categorical: full domain regardless of k.
	cats := SampleValues(tab, 1, 1, true, rng)
	if len(cats) != 3 {
		t.Errorf("categorical domain = %v, want 3 values", cats)
	}

	// k larger than domain: everything.
	all := SampleValues(tab, 1, 100, false, rng)
	if len(all) != 3 {
		t.Errorf("over-sampling = %d values, want 3", len(all))
	}
}

func TestSampleDeterministicUnderSeed(t *testing.T) {
	db := numericDB(t)
	tab := db.Table("T")
	a := SampleValues(tab, 0, 20, false, rand.New(rand.NewSource(42)))
	b := SampleValues(tab, 0, 20, false, rand.New(rand.NewSource(42)))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if !sqltypes.Equal(a[i], b[i]) {
			t.Fatal("same seed must give same sample")
		}
	}
}

func TestEmptyTableStats(t *testing.T) {
	s, err := schema.NewBuilder("e").
		Table("E", "", schema.Column{Name: "x", Kind: sqltypes.KindInt}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	cs := Collect(db).Column("E", 0)
	if cs.RowCount != 0 || cs.NDV != 0 {
		t.Errorf("empty stats = %+v", cs)
	}
	if cs.SelectivityEq(sqltypes.NewInt(1)) != 0 {
		t.Error("empty table eq selectivity must be 0")
	}
	if cs.SelectivityLt(sqltypes.NewInt(1)) != 0 {
		t.Error("empty table lt selectivity must be 0")
	}
}

func TestSelectivityLike(t *testing.T) {
	db := numericDB(t)
	cs := Collect(db).Column("T", 2) // strings 'a'..'z' plus heavy 'zz'
	match := func(s, pat string) bool {
		// Simple contains-matcher for the test (patterns "%" / "%x%").
		if pat == "%" {
			return true
		}
		inner := pat[1 : len(pat)-1]
		for i := 0; i+len(inner) <= len(s); i++ {
			if s[i:i+len(inner)] == inner {
				return true
			}
		}
		return false
	}
	all := cs.SelectivityLike("%", match) // matches everything via contains("")
	if all < 0.99 {
		t.Errorf("%% selectivity = %v, want ~1", all)
	}
	z := cs.SelectivityLike("%z%", match)
	// 'z' appears in ~1/26 of base rows plus 100 'zz' rows of 1100.
	want := (1000.0/26 + 100) / 1100
	if z < want/2 || z > want*2 {
		t.Errorf("%%z%% selectivity = %v, want ≈%v", z, want)
	}
	if got := cs.SelectivityLike("%nosuch%", match); got != 0 {
		t.Errorf("no-match selectivity = %v", got)
	}
	empty := ColumnStats{}
	if empty.SelectivityLike("%x%", match) != 0 {
		t.Error("empty-table selectivity must be 0")
	}
}
