package schema

import (
	"testing"

	"learnedsqlgen/internal/sqltypes"
)

// studentScore builds the two-table example schema from Figure 1 of the
// paper: Score(ID, Course, Score) and Student(ID, Name).
func studentScore(t *testing.T) *Schema {
	t.Helper()
	s, err := NewBuilder("example").
		Table("Score", "T1",
			Column{Name: "ID", Kind: sqltypes.KindInt},
			Column{Name: "Course", Kind: sqltypes.KindString, Categorical: true},
			Column{Name: "Score", Kind: sqltypes.KindFloat},
		).
		Table("Student", "T2",
			Column{Name: "ID", Kind: sqltypes.KindInt, PrimaryKey: true},
			Column{Name: "Name", Kind: sqltypes.KindString},
		).
		ForeignKey("Score", "ID", "Student", "ID").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

func TestBuildAndLookup(t *testing.T) {
	s := studentScore(t)
	if got := s.TableByName("Score"); got == nil || got.Alias != "T1" {
		t.Fatalf("TableByName(Score) = %v", got)
	}
	if s.TableByName("Nope") != nil {
		t.Error("unknown table must return nil")
	}
	if s.TableIndex("Student") != 1 {
		t.Error("TableIndex(Student) != 1")
	}
	if s.TableIndex("Nope") != -1 {
		t.Error("TableIndex(unknown) != -1")
	}
	tab := s.TableByName("Score")
	if tab.ColumnIndex("Course") != 1 {
		t.Error("ColumnIndex(Course) != 1")
	}
	if tab.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex(unknown) != -1")
	}
	if c := tab.Column("Score"); c == nil || c.Kind != sqltypes.KindFloat {
		t.Error("Column(Score) wrong")
	}
	if tab.Column("nope") != nil {
		t.Error("Column(unknown) must be nil")
	}
}

func TestPrimaryKeyIndex(t *testing.T) {
	s := studentScore(t)
	if s.TableByName("Student").PrimaryKeyIndex() != 0 {
		t.Error("Student PK must be ID at index 0")
	}
	if s.TableByName("Score").PrimaryKeyIndex() != -1 {
		t.Error("Score has no PK")
	}
}

func TestJoinEdgesBidirectional(t *testing.T) {
	s := studentScore(t)
	if e, ok := s.JoinEdgeBetween("Score", "Student"); !ok || e.LeftColumn != "ID" || e.RightColumn != "ID" {
		t.Errorf("Score→Student edge = %+v, ok=%v", e, ok)
	}
	if _, ok := s.JoinEdgeBetween("Student", "Score"); !ok {
		t.Error("edge must be bidirectional")
	}
	if _, ok := s.JoinEdgeBetween("Score", "Score"); ok {
		t.Error("no self edge declared")
	}
}

func TestJoinableFrom(t *testing.T) {
	s := studentScore(t)
	got := s.JoinableFrom(map[string]bool{"Score": true})
	if len(got) != 1 || got[0] != "Student" {
		t.Errorf("JoinableFrom({Score}) = %v", got)
	}
	got = s.JoinableFrom(map[string]bool{"Score": true, "Student": true})
	if len(got) != 0 {
		t.Errorf("JoinableFrom(all) = %v, want empty", got)
	}
}

func TestResolveColumn(t *testing.T) {
	s := studentScore(t)
	c, err := s.ResolveColumn(QualifiedColumn{"Student", "Name"})
	if err != nil || c.Kind != sqltypes.KindString {
		t.Errorf("ResolveColumn = %v, %v", c, err)
	}
	if _, err := s.ResolveColumn(QualifiedColumn{"Nope", "X"}); err == nil {
		t.Error("unknown table must error")
	}
	if _, err := s.ResolveColumn(QualifiedColumn{"Student", "X"}); err == nil {
		t.Error("unknown column must error")
	}
	if got := (QualifiedColumn{"Student", "Name"}).String(); got != "Student.Name" {
		t.Errorf("QualifiedColumn.String() = %q", got)
	}
}

func TestBuilderRejectsDuplicates(t *testing.T) {
	_, err := NewBuilder("bad").
		Table("A", "", Column{Name: "x", Kind: sqltypes.KindInt}).
		Table("A", "", Column{Name: "x", Kind: sqltypes.KindInt}).
		Build()
	if err == nil {
		t.Error("duplicate table must fail Build")
	}
	_, err = NewBuilder("bad").
		Table("A", "",
			Column{Name: "x", Kind: sqltypes.KindInt},
			Column{Name: "x", Kind: sqltypes.KindInt}).
		Build()
	if err == nil {
		t.Error("duplicate column must fail Build")
	}
}

func TestBuilderRejectsBadForeignKeys(t *testing.T) {
	// Unknown table.
	_, err := NewBuilder("bad").
		Table("A", "", Column{Name: "x", Kind: sqltypes.KindInt}).
		ForeignKey("A", "x", "B", "y").
		Build()
	if err == nil {
		t.Error("FK to unknown table must fail")
	}
	// Unknown column.
	_, err = NewBuilder("bad").
		Table("A", "", Column{Name: "x", Kind: sqltypes.KindInt}).
		Table("B", "", Column{Name: "y", Kind: sqltypes.KindInt}).
		ForeignKey("A", "nope", "B", "y").
		Build()
	if err == nil {
		t.Error("FK from unknown column must fail")
	}
	// Type mismatch: "columns with different datatypes cannot be joined".
	_, err = NewBuilder("bad").
		Table("A", "", Column{Name: "x", Kind: sqltypes.KindInt}).
		Table("B", "", Column{Name: "y", Kind: sqltypes.KindString}).
		ForeignKey("A", "x", "B", "y").
		Build()
	if err == nil {
		t.Error("FK with mismatched types must fail")
	}
}

func TestDefaultAlias(t *testing.T) {
	s, err := NewBuilder("x").
		Table("Orders", "", Column{Name: "id", Kind: sqltypes.KindInt}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.TableByName("Orders").Alias != "Orders" {
		t.Error("empty alias must default to table name")
	}
}
