// Package schema defines the database catalog: tables, columns, primary
// keys and the foreign-key join graph. The FSM's semantic rules (§5 of the
// paper, "Meaningful Checking") consult the join graph so that generated
// queries only join columns with declared PK–FK or user-specified join
// relations.
package schema

import (
	"fmt"
	"sort"

	"learnedsqlgen/internal/sqltypes"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Kind sqltypes.Kind
	// Categorical marks a string column with a small closed domain (e.g.
	// Gender). The token vocabulary enumerates every distinct value of a
	// categorical column instead of sampling k values (§4.1).
	Categorical bool
	// PrimaryKey marks the table's key column (single-column keys only,
	// which covers the three benchmark schemas).
	PrimaryKey bool
}

// Table describes one relation.
type Table struct {
	Name    string
	Alias   string // short alias used in generated SQL, e.g. "T1"
	Columns []Column

	byName map[string]int
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	i := t.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return &t.Columns[i]
}

// PrimaryKeyIndex returns the index of the primary-key column, or -1.
func (t *Table) PrimaryKeyIndex() int {
	for i := range t.Columns {
		if t.Columns[i].PrimaryKey {
			return i
		}
	}
	return -1
}

// ForeignKey declares that FromTable.FromColumn references ToTable.ToColumn.
// The FSM treats foreign keys as the only legal join edges ("two columns can
// join, only if they have Primary-key-Foreign-key relations or
// user-specified join relations", §5).
type ForeignKey struct {
	FromTable, FromColumn string
	ToTable, ToColumn     string
}

// Schema is an immutable catalog of tables plus the join graph.
type Schema struct {
	Name   string
	Tables []*Table
	FKs    []ForeignKey

	byName map[string]int
	// joinEdges[table] lists joinable neighbours with the join columns.
	joinEdges map[string][]JoinEdge
}

// JoinEdge is a resolved join relation between two tables.
type JoinEdge struct {
	LeftTable, LeftColumn   string
	RightTable, RightColumn string
}

// Builder incrementally assembles a Schema.
type Builder struct {
	s    *Schema
	errs []error
}

// NewBuilder starts a schema named name.
func NewBuilder(name string) *Builder {
	return &Builder{s: &Schema{
		Name:      name,
		byName:    map[string]int{},
		joinEdges: map[string][]JoinEdge{},
	}}
}

// Table adds a table with the given columns. Alias defaults to the table
// name when empty.
func (b *Builder) Table(name, alias string, cols ...Column) *Builder {
	if alias == "" {
		alias = name
	}
	if _, dup := b.s.byName[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("schema: duplicate table %q", name))
		return b
	}
	t := &Table{Name: name, Alias: alias, Columns: cols, byName: map[string]int{}}
	for i, c := range cols {
		if _, dup := t.byName[c.Name]; dup {
			b.errs = append(b.errs, fmt.Errorf("schema: duplicate column %s.%s", name, c.Name))
			continue
		}
		t.byName[c.Name] = i
	}
	b.s.byName[name] = len(b.s.Tables)
	b.s.Tables = append(b.s.Tables, t)
	return b
}

// ForeignKey declares a PK–FK relation.
func (b *Builder) ForeignKey(fromTable, fromColumn, toTable, toColumn string) *Builder {
	b.s.FKs = append(b.s.FKs, ForeignKey{fromTable, fromColumn, toTable, toColumn})
	return b
}

// Build validates and returns the schema.
func (b *Builder) Build() (*Schema, error) {
	s := b.s
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, fk := range s.FKs {
		ft := s.TableByName(fk.FromTable)
		tt := s.TableByName(fk.ToTable)
		if ft == nil || tt == nil {
			return nil, fmt.Errorf("schema: FK references unknown table %s→%s", fk.FromTable, fk.ToTable)
		}
		fc := ft.Column(fk.FromColumn)
		tc := tt.Column(fk.ToColumn)
		if fc == nil || tc == nil {
			return nil, fmt.Errorf("schema: FK references unknown column %s.%s→%s.%s",
				fk.FromTable, fk.FromColumn, fk.ToTable, fk.ToColumn)
		}
		if fc.Kind != tc.Kind {
			// Columns with different datatypes cannot be joined (§5).
			return nil, fmt.Errorf("schema: FK type mismatch %s.%s(%v)→%s.%s(%v)",
				fk.FromTable, fk.FromColumn, fc.Kind, fk.ToTable, fk.ToColumn, tc.Kind)
		}
		s.joinEdges[fk.FromTable] = append(s.joinEdges[fk.FromTable], JoinEdge{
			LeftTable: fk.FromTable, LeftColumn: fk.FromColumn,
			RightTable: fk.ToTable, RightColumn: fk.ToColumn,
		})
		s.joinEdges[fk.ToTable] = append(s.joinEdges[fk.ToTable], JoinEdge{
			LeftTable: fk.ToTable, LeftColumn: fk.ToColumn,
			RightTable: fk.FromTable, RightColumn: fk.FromColumn,
		})
	}
	return s, nil
}

// TableByName returns the named table, or nil.
func (s *Schema) TableByName(name string) *Table {
	if i, ok := s.byName[name]; ok {
		return s.Tables[i]
	}
	return nil
}

// TableIndex returns the position of the named table, or -1.
func (s *Schema) TableIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// JoinEdges returns every declared join relation incident to table, with the
// table on the left side of each edge. Callers must not mutate the result.
func (s *Schema) JoinEdges(table string) []JoinEdge {
	return s.joinEdges[table]
}

// JoinEdgeBetween returns the join relation between two tables, if any.
func (s *Schema) JoinEdgeBetween(left, right string) (JoinEdge, bool) {
	for _, e := range s.joinEdges[left] {
		if e.RightTable == right {
			return e, true
		}
	}
	return JoinEdge{}, false
}

// JoinableFrom returns the sorted names of tables reachable in one hop from
// any table in the given set and not already in the set. The FSM uses it to
// mask JOIN targets.
func (s *Schema) JoinableFrom(tables map[string]bool) []string {
	seen := map[string]bool{}
	for t := range tables {
		for _, e := range s.joinEdges[t] {
			if !tables[e.RightTable] {
				seen[e.RightTable] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// QualifiedColumn names a column as table.column.
type QualifiedColumn struct {
	Table  string
	Column string
}

// String renders "table.column".
func (q QualifiedColumn) String() string { return q.Table + "." + q.Column }

// ResolveColumn finds the column metadata for a qualified name.
func (s *Schema) ResolveColumn(q QualifiedColumn) (*Column, error) {
	t := s.TableByName(q.Table)
	if t == nil {
		return nil, fmt.Errorf("schema: unknown table %q", q.Table)
	}
	c := t.Column(q.Column)
	if c == nil {
		return nil, fmt.Errorf("schema: unknown column %q.%q", q.Table, q.Column)
	}
	return c, nil
}
