package datagen

import (
	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/storage"
)

// XueTang builds the 14-table online-education OLTP schema modelled on the
// XuetangX benchmark used in the paper: schools, teachers, courses and
// chapters on the catalog side; users, enrollments, video-watch events,
// exercise submissions, forum threads/posts, ratings and certificates on
// the activity side. Activity tables skew towards popular courses and
// highly active users.
func XueTang(scale float64, seed int64) *storage.Database {
	db := storage.NewDatabase(mustBuild(schemaXueTang()))
	g := newGen(seed)

	nSchool := 30
	nTeacher := scaled(150, scale)
	nUser := scaled(2500, scale)
	nCourse := scaled(300, scale)
	nChapter := scaled(1500, scale)
	nVideo := scaled(3000, scale)
	nExercise := scaled(2000, scale)
	nEnrollment := scaled(8000, scale)
	nVideoWatch := scaled(10000, scale)
	nSubmission := scaled(7000, scale)
	nThread := scaled(800, scale)
	nPost := scaled(2500, scale)
	nCertificate := scaled(1200, scale)
	nRating := scaled(1800, scale)

	for i := 0; i < nSchool; i++ {
		mustAppend(db, "school", storage.Row{
			iv(int64(i)), sv(nameOf("school", int64(i))), iv(g.intIn(1900, 2005)),
		})
	}
	titles := []string{"lecturer", "associate professor", "professor", "assistant"}
	for i := 0; i < nTeacher; i++ {
		mustAppend(db, "teacher", storage.Row{
			iv(int64(i)), sv(nameOf("teacher", int64(i))), iv(g.fkUniform(nSchool)),
			sv(g.pick(titles)),
		})
	}
	genders := []string{"male", "female", "unknown"}
	degrees := []string{"none", "bachelor", "master", "phd"}
	for i := 0; i < nUser; i++ {
		mustAppend(db, "user", storage.Row{
			iv(int64(i)), sv(nameOf("user", int64(i))), sv(g.pick(genders)),
			iv(g.intIn(14, 70)), sv(g.pickSkew(degrees)),
		})
	}
	subjects := []string{"cs", "math", "physics", "biology", "economics",
		"art", "history", "language"}
	levels := []string{"beginner", "intermediate", "advanced"}
	for i := 0; i < nCourse; i++ {
		mustAppend(db, "course", storage.Row{
			iv(int64(i)), sv(nameOf("course", int64(i))), iv(g.fkUniform(nTeacher)),
			iv(g.fkUniform(nSchool)), sv(g.pickSkew(subjects)), sv(g.pick(levels)),
			iv(g.intIn(2, 20)), // weeks
		})
	}
	for i := 0; i < nChapter; i++ {
		mustAppend(db, "chapter", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nCourse)), iv(g.intIn(1, 20)),
			sv(nameOf("chapter", int64(i))),
		})
	}
	for i := 0; i < nVideo; i++ {
		mustAppend(db, "video", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nChapter)), sv(nameOf("video", int64(i))),
			iv(g.intIn(60, 3600)), // seconds
		})
	}
	kindsEx := []string{"single-choice", "multi-choice", "fill-in", "code"}
	for i := 0; i < nExercise; i++ {
		mustAppend(db, "exercise", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nChapter)), sv(g.pick(kindsEx)),
			fv(g.floatIn(0.5, 10)), // points
		})
	}
	for i := 0; i < nEnrollment; i++ {
		mustAppend(db, "enrollment", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nUser)), iv(g.fkSkew(nCourse)),
			iv(g.intIn(18000, 19200)), // enroll day number
			fv(g.floatIn(0, 1)),       // progress
		})
	}
	for i := 0; i < nVideoWatch; i++ {
		mustAppend(db, "video_watch", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nUser)), iv(g.fkSkew(nVideo)),
			iv(g.intIn(0, 3600)), fv(g.floatIn(0.25, 2)), // seconds watched, speed
		})
	}
	for i := 0; i < nSubmission; i++ {
		mustAppend(db, "submission", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nUser)), iv(g.fkSkew(nExercise)),
			fv(g.floatIn(0, 10)), iv(g.intIn(1, 10)), // score, attempt
		})
	}
	for i := 0; i < nThread; i++ {
		mustAppend(db, "forum_thread", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nCourse)), iv(g.fkSkew(nUser)),
			sv(nameOf("thread", int64(i))),
		})
	}
	for i := 0; i < nPost; i++ {
		mustAppend(db, "forum_post", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nThread)), iv(g.fkSkew(nUser)),
			iv(g.intIn(1, 2000)), // body length
		})
	}
	grades := []string{"pass", "merit", "distinction"}
	for i := 0; i < nCertificate; i++ {
		mustAppend(db, "certificate", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nUser)), iv(g.fkSkew(nCourse)),
			sv(g.pickSkew(grades)),
		})
	}
	for i := 0; i < nRating; i++ {
		mustAppend(db, "rating", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nUser)), iv(g.fkSkew(nCourse)),
			iv(g.intIn(1, 5)),
		})
	}
	return db
}

func schemaXueTang() *schema.Builder {
	return schema.NewBuilder("xuetang").
		Table("school", "sc", pkCol("id"), strCol("name"), intCol("founded")).
		Table("teacher", "te",
			pkCol("id"), strCol("name"), intCol("school_id"), catCol("title")).
		Table("user", "u",
			pkCol("id"), strCol("name"), catCol("gender"), intCol("age"),
			catCol("degree")).
		Table("course", "co",
			pkCol("id"), strCol("name"), intCol("teacher_id"), intCol("school_id"),
			catCol("subject"), catCol("level"), intCol("weeks")).
		Table("chapter", "ch",
			pkCol("id"), intCol("course_id"), intCol("seq"), strCol("name")).
		Table("video", "vi",
			pkCol("id"), intCol("chapter_id"), strCol("name"), intCol("duration")).
		Table("exercise", "ex",
			pkCol("id"), intCol("chapter_id"), catCol("kind"), floatCol("points")).
		Table("enrollment", "en",
			pkCol("id"), intCol("user_id"), intCol("course_id"),
			intCol("enroll_date"), floatCol("progress")).
		Table("video_watch", "vw",
			pkCol("id"), intCol("user_id"), intCol("video_id"),
			intCol("seconds"), floatCol("speed")).
		Table("submission", "su",
			pkCol("id"), intCol("user_id"), intCol("exercise_id"),
			floatCol("score"), intCol("attempt")).
		Table("forum_thread", "ft",
			pkCol("id"), intCol("course_id"), intCol("user_id"), strCol("title")).
		Table("forum_post", "fp",
			pkCol("id"), intCol("thread_id"), intCol("user_id"), intCol("length")).
		Table("certificate", "ce",
			pkCol("id"), intCol("user_id"), intCol("course_id"), catCol("grade")).
		Table("rating", "ra",
			pkCol("id"), intCol("user_id"), intCol("course_id"), intCol("stars")).
		ForeignKey("teacher", "school_id", "school", "id").
		ForeignKey("course", "teacher_id", "teacher", "id").
		ForeignKey("course", "school_id", "school", "id").
		ForeignKey("chapter", "course_id", "course", "id").
		ForeignKey("video", "chapter_id", "chapter", "id").
		ForeignKey("exercise", "chapter_id", "chapter", "id").
		ForeignKey("enrollment", "user_id", "user", "id").
		ForeignKey("enrollment", "course_id", "course", "id").
		ForeignKey("video_watch", "user_id", "user", "id").
		ForeignKey("video_watch", "video_id", "video", "id").
		ForeignKey("submission", "user_id", "user", "id").
		ForeignKey("submission", "exercise_id", "exercise", "id").
		ForeignKey("forum_thread", "course_id", "course", "id").
		ForeignKey("forum_thread", "user_id", "user", "id").
		ForeignKey("forum_post", "thread_id", "forum_thread", "id").
		ForeignKey("forum_post", "user_id", "user", "id").
		ForeignKey("certificate", "user_id", "user", "id").
		ForeignKey("certificate", "course_id", "course", "id").
		ForeignKey("rating", "user_id", "user", "id").
		ForeignKey("rating", "course_id", "course", "id")
}
