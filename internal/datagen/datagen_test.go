package datagen

import (
	"testing"

	"learnedsqlgen/internal/sqltypes"
)

func TestGenerateDispatch(t *testing.T) {
	for _, name := range []string{NameTPCH, NameJOB, NameXueTang} {
		db, err := Generate(name, 0.1, 1)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		if db.TotalRows() == 0 {
			t.Errorf("%s: no rows", name)
		}
	}
	if _, err := Generate("nope", 1, 1); err == nil {
		t.Error("unknown dataset must fail")
	}
	if _, err := Generate(NameTPCH, 0, 1); err == nil {
		t.Error("zero scale must fail")
	}
	if _, err := Generate(NameTPCH, -1, 1); err == nil {
		t.Error("negative scale must fail")
	}
}

func TestTableCountsMatchPaper(t *testing.T) {
	cases := []struct {
		name string
		want int
	}{
		{NameTPCH, 8},     // "TPC-H ... contains 8 relational tables"
		{NameJOB, 21},     // "JOB ... consists of 21 tables"
		{NameXueTang, 14}, // "XueTang ... contains 14 tables"
	}
	for _, c := range cases {
		db, err := Generate(c.name, 0.05, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(db.Schema.Tables); got != c.want {
			t.Errorf("%s: %d tables, want %d", c.name, got, c.want)
		}
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a := TPCH(0.05, 42)
	b := TPCH(0.05, 42)
	c := TPCH(0.05, 43)
	ta, tb, tc := a.Table("lineitem"), b.Table("lineitem"), c.Table("lineitem")
	if ta.NumRows() != tb.NumRows() {
		t.Fatal("same seed, different row counts")
	}
	diff := false
	for i := 0; i < ta.NumRows(); i++ {
		for j := range ta.Row(i) {
			if !sqltypes.Equal(ta.Row(i)[j], tb.Row(i)[j]) {
				t.Fatalf("same seed differs at row %d col %d", i, j)
			}
		}
		if i < tc.NumRows() {
			for j := range ta.Row(i) {
				if !sqltypes.Equal(ta.Row(i)[j], tc.Row(i)[j]) {
					diff = true
				}
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

func TestScaleChangesRowCounts(t *testing.T) {
	small := TPCH(0.1, 1)
	big := TPCH(0.5, 1)
	s, b := small.Table("lineitem").NumRows(), big.Table("lineitem").NumRows()
	if b <= s {
		t.Errorf("scale 0.5 lineitem (%d) must exceed scale 0.1 (%d)", b, s)
	}
	ratio := float64(b) / float64(s)
	if ratio < 4 || ratio > 6 {
		t.Errorf("row ratio %.2f, want ≈5", ratio)
	}
}

// TestForeignKeyIntegrity checks that every FK value references an existing
// parent key in all three datasets.
func TestForeignKeyIntegrity(t *testing.T) {
	for _, name := range []string{NameTPCH, NameJOB, NameXueTang} {
		db, err := Generate(name, 0.05, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, fk := range db.Schema.FKs {
			parent := db.Table(fk.ToTable)
			pIdx := parent.Meta.ColumnIndex(fk.ToColumn)
			keys := map[int64]bool{}
			for _, r := range parent.Rows() {
				keys[r[pIdx].Int()] = true
			}
			child := db.Table(fk.FromTable)
			cIdx := child.Meta.ColumnIndex(fk.FromColumn)
			for ri, r := range child.Rows() {
				if !keys[r[cIdx].Int()] {
					t.Fatalf("%s: %s.%s row %d = %v has no parent in %s.%s",
						name, fk.FromTable, fk.FromColumn, ri, r[cIdx], fk.ToTable, fk.ToColumn)
				}
			}
		}
	}
}

// TestPrimaryKeysUnique verifies PK uniqueness in every table.
func TestPrimaryKeysUnique(t *testing.T) {
	for _, name := range []string{NameTPCH, NameJOB, NameXueTang} {
		db, err := Generate(name, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		for _, tab := range db.Tables() {
			pk := tab.Meta.PrimaryKeyIndex()
			if pk < 0 {
				continue
			}
			seen := map[int64]bool{}
			for _, r := range tab.Rows() {
				k := r[pk].Int()
				if seen[k] {
					t.Fatalf("%s.%s: duplicate PK %d", name, tab.Meta.Name, k)
				}
				seen[k] = true
			}
		}
	}
}

// TestColumnKindsMatchData verifies every stored value matches its declared
// column kind (and is non-null: the generators never emit NULL).
func TestColumnKindsMatchData(t *testing.T) {
	for _, name := range []string{NameTPCH, NameJOB, NameXueTang} {
		db, err := Generate(name, 0.05, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, tab := range db.Tables() {
			for ri, r := range tab.Rows() {
				for ci, v := range r {
					want := tab.Meta.Columns[ci].Kind
					if v.IsNull() {
						t.Fatalf("%s.%s row %d col %d: NULL", name, tab.Meta.Name, ri, ci)
					}
					if v.Kind() != want {
						t.Fatalf("%s.%s row %d col %s: kind %v, want %v",
							name, tab.Meta.Name, ri, tab.Meta.Columns[ci].Name, v.Kind(), want)
					}
				}
			}
		}
	}
}

// TestSkewPresent verifies the Zipf-flavoured FK skew: the most popular
// parent key should appear far more often than the uniform share.
func TestSkewPresent(t *testing.T) {
	db := TPCH(0.3, 5)
	orders := db.Table("orders")
	custIdx := orders.Meta.ColumnIndex("o_custkey")
	counts := map[int64]int{}
	for _, r := range orders.Rows() {
		counts[r[custIdx].Int()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(orders.NumRows()) / float64(db.Table("customer").NumRows())
	if float64(max) < 3*uniform {
		t.Errorf("hottest customer %d orders; expected > 3× the uniform share %.1f", max, uniform)
	}
}

// TestCategoricalDomainsSmall verifies categorical columns keep small
// closed domains (the vocabulary enumerates them exhaustively).
func TestCategoricalDomainsSmall(t *testing.T) {
	for _, name := range []string{NameTPCH, NameJOB, NameXueTang} {
		db, err := Generate(name, 0.2, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, tab := range db.Tables() {
			for ci, c := range tab.Meta.Columns {
				if !c.Categorical {
					continue
				}
				distinct := map[string]bool{}
				for _, r := range tab.Rows() {
					distinct[r[ci].Str()] = true
				}
				if len(distinct) > 32 {
					t.Errorf("%s.%s.%s: %d distinct values is too many for categorical",
						name, tab.Meta.Name, c.Name, len(distinct))
				}
			}
		}
	}
}

func TestWordAndNameHelpers(t *testing.T) {
	if word(5) != word(5) {
		t.Error("word must be deterministic")
	}
	if word(-3) != word(3) {
		t.Error("word must handle negatives")
	}
	if nameOf("x", 12) == nameOf("x", 13) {
		t.Error("names must be unique per id")
	}
}

func TestScaledFloorsAtOne(t *testing.T) {
	if scaled(10, 0.001) != 1 {
		t.Error("scaled must floor at 1")
	}
	if scaled(10, 2) != 20 {
		t.Error("scaled must multiply")
	}
}
