package datagen

import (
	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/storage"
)

// TPCH builds the 8-table TPC-H schema (region, nation, supplier, customer,
// part, partsupp, orders, lineitem) with the standard PK–FK graph. At
// scale 1.0 the fact table lineitem holds ~12 000 rows; real TPC-H column
// semantics (order/ship dates as day numbers, prices, discounts, flags)
// are preserved so that cost/cardinality constraints behave like the
// paper's workloads.
func TPCH(scale float64, seed int64) *storage.Database {
	sch := mustBuild(schemaTPCH())
	db := storage.NewDatabase(sch)
	g := newGen(seed)

	nRegion := 5
	nNation := 25
	nSupplier := scaled(100, scale)
	nCustomer := scaled(1500, scale)
	nPart := scaled(2000, scale)
	nPartSupp := scaled(4000, scale)
	nOrders := scaled(3000, scale)
	nLineitem := scaled(12000, scale)

	regions := []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	for i := 0; i < nRegion; i++ {
		mustAppend(db, "region", storage.Row{iv(int64(i)), sv(regions[i])})
	}
	for i := 0; i < nNation; i++ {
		mustAppend(db, "nation", storage.Row{
			iv(int64(i)), sv(nameOf("nation", int64(i))), iv(int64(i % nRegion)),
		})
	}
	for i := 0; i < nSupplier; i++ {
		mustAppend(db, "supplier", storage.Row{
			iv(int64(i)), sv(nameOf("supp", int64(i))), iv(g.fkUniform(nNation)),
			fv(g.floatIn(-999, 9999)),
		})
	}
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	for i := 0; i < nCustomer; i++ {
		mustAppend(db, "customer", storage.Row{
			iv(int64(i)), sv(nameOf("cust", int64(i))), iv(g.fkUniform(nNation)),
			fv(g.floatIn(-999, 9999)), sv(g.pick(segments)),
		})
	}
	brands := []string{"Brand#11", "Brand#12", "Brand#21", "Brand#22", "Brand#31",
		"Brand#32", "Brand#41", "Brand#42", "Brand#51", "Brand#52"}
	containers := []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE",
		"LG BOX", "JUMBO PKG", "WRAP PACK"}
	for i := 0; i < nPart; i++ {
		mustAppend(db, "part", storage.Row{
			iv(int64(i)), sv(nameOf("part", int64(i))), sv(g.pick(brands)),
			iv(g.intIn(1, 50)), sv(g.pick(containers)), fv(g.floatIn(900, 2100)),
		})
	}
	for i := 0; i < nPartSupp; i++ {
		mustAppend(db, "partsupp", storage.Row{
			iv(int64(i)), iv(g.fkUniform(nPart)), iv(g.fkUniform(nSupplier)),
			iv(g.intIn(1, 9999)), fv(g.floatIn(1, 1000)),
		})
	}
	orderStatus := []string{"F", "O", "P"}
	priorities := []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	for i := 0; i < nOrders; i++ {
		mustAppend(db, "orders", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nCustomer)), sv(g.pick(orderStatus)),
			fv(g.floatIn(800, 450000)), iv(g.intIn(8000, 10600)), // orderdate as day number
			sv(g.pick(priorities)),
		})
	}
	flags := []string{"A", "N", "R"}
	shipModes := []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	for i := 0; i < nLineitem; i++ {
		order := g.fkSkew(nOrders)
		mustAppend(db, "lineitem", storage.Row{
			iv(int64(i)), iv(order), iv(g.fkUniform(nPart)), iv(g.fkUniform(nSupplier)),
			iv(g.intIn(1, 50)), fv(g.floatIn(900, 105000)),
			fv(g.floatIn(0, 0.1)), fv(g.floatIn(0, 0.08)),
			sv(g.pick(flags)), iv(g.intIn(8000, 10700)), // shipdate day number
			sv(g.pick(shipModes)),
		})
	}
	return db
}

func schemaTPCH() *schema.Builder {
	return schema.NewBuilder("tpch").
		Table("region", "r",
			pkCol("r_regionkey"), catCol("r_name")).
		Table("nation", "n",
			pkCol("n_nationkey"), strCol("n_name"), intCol("n_regionkey")).
		Table("supplier", "s",
			pkCol("s_suppkey"), strCol("s_name"), intCol("s_nationkey"),
			floatCol("s_acctbal")).
		Table("customer", "c",
			pkCol("c_custkey"), strCol("c_name"), intCol("c_nationkey"),
			floatCol("c_acctbal"), catCol("c_mktsegment")).
		Table("part", "p",
			pkCol("p_partkey"), strCol("p_name"), catCol("p_brand"),
			intCol("p_size"), catCol("p_container"), floatCol("p_retailprice")).
		Table("partsupp", "ps",
			pkCol("ps_key"), intCol("ps_partkey"), intCol("ps_suppkey"),
			intCol("ps_availqty"), floatCol("ps_supplycost")).
		Table("orders", "o",
			pkCol("o_orderkey"), intCol("o_custkey"), catCol("o_orderstatus"),
			floatCol("o_totalprice"), intCol("o_orderdate"), catCol("o_orderpriority")).
		Table("lineitem", "l",
			pkCol("l_linekey"), intCol("l_orderkey"), intCol("l_partkey"),
			intCol("l_suppkey"), intCol("l_quantity"), floatCol("l_extendedprice"),
			floatCol("l_discount"), floatCol("l_tax"), catCol("l_returnflag"),
			intCol("l_shipdate"), catCol("l_shipmode")).
		ForeignKey("nation", "n_regionkey", "region", "r_regionkey").
		ForeignKey("supplier", "s_nationkey", "nation", "n_nationkey").
		ForeignKey("customer", "c_nationkey", "nation", "n_nationkey").
		ForeignKey("partsupp", "ps_partkey", "part", "p_partkey").
		ForeignKey("partsupp", "ps_suppkey", "supplier", "s_suppkey").
		ForeignKey("orders", "o_custkey", "customer", "c_custkey").
		ForeignKey("lineitem", "l_orderkey", "orders", "o_orderkey").
		ForeignKey("lineitem", "l_partkey", "part", "p_partkey").
		ForeignKey("lineitem", "l_suppkey", "supplier", "s_suppkey")
}
