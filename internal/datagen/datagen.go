// Package datagen builds the three evaluation databases of the paper —
// TPC-H (8 tables), JOB/IMDB (21 tables) and XueTang (14 tables) — as
// deterministic synthetic micro-scale datasets. The paper runs against
// 14–33 GB instances; rewards in LearnedSQLGen come from the estimator, so
// what matters is that the schemas, PK–FK graphs, value-domain shapes and
// skew are faithful, not the byte count (see DESIGN.md §2).
//
// All generators take a scale factor (1.0 ≈ 2×10⁴–4×10⁴ rows total) and a
// seed; the same (scale, seed) always produces identical bytes.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/storage"
)

// Dataset names accepted by Generate.
const (
	NameTPCH    = "tpch"
	NameJOB     = "job"
	NameXueTang = "xuetang"
)

// Generate builds the named dataset. Scale must be positive; rows scale
// roughly linearly with it.
func Generate(name string, scale float64, seed int64) (*storage.Database, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("datagen: scale must be positive, got %v", scale)
	}
	switch name {
	case NameTPCH:
		return TPCH(scale, seed), nil
	case NameJOB:
		return JOB(scale, seed), nil
	case NameXueTang:
		return XueTang(scale, seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (want tpch, job or xuetang)", name)
	}
}

// gen wraps a seeded random source with the value helpers shared by the
// three generators.
type gen struct {
	rng *rand.Rand
}

func newGen(seed int64) *gen { return &gen{rng: rand.New(rand.NewSource(seed))} }

// n scales a base row count.
func scaled(base int, scale float64) int {
	n := int(math.Round(float64(base) * scale))
	if n < 1 {
		n = 1
	}
	return n
}

// fkSkew draws a foreign key in [0, parent) with a Zipf-flavoured skew:
// squaring the uniform draw concentrates mass on low ids, mimicking the
// hot-key skew of real datasets (popular movies, active users, big
// customers).
func (g *gen) fkSkew(parent int) int64 {
	u := g.rng.Float64()
	return int64(u * u * float64(parent))
}

// fkUniform draws a uniform foreign key in [0, parent).
func (g *gen) fkUniform(parent int) int64 { return int64(g.rng.Intn(parent)) }

// intIn draws an int uniformly in [lo, hi].
func (g *gen) intIn(lo, hi int64) int64 { return lo + g.rng.Int63n(hi-lo+1) }

// floatIn draws a float uniformly in [lo, hi) rounded to 2 decimals.
func (g *gen) floatIn(lo, hi float64) float64 {
	return math.Round((lo+g.rng.Float64()*(hi-lo))*100) / 100
}

// pick chooses one of the options uniformly.
func (g *gen) pick(opts []string) string { return opts[g.rng.Intn(len(opts))] }

// pickSkew chooses one of the options with squared-uniform skew.
func (g *gen) pickSkew(opts []string) string {
	u := g.rng.Float64()
	return opts[int(u*u*float64(len(opts)))]
}

// word builds a pseudo-word of the given id, drawn from a syllable pool so
// that string columns have realistic prefixes and ordering.
func word(id int64) string {
	syll := []string{"ba", "ce", "di", "fo", "gu", "ha", "ki", "lo", "mu", "ne",
		"pa", "qi", "ro", "su", "ta", "vu"}
	if id < 0 {
		id = -id
	}
	s := ""
	for i := 0; i < 3; i++ {
		s += syll[id%int64(len(syll))]
		id /= int64(len(syll))
	}
	return s
}

// name builds "prefix_word#id" identifiers (unique per id).
func nameOf(prefix string, id int64) string {
	return fmt.Sprintf("%s_%s%d", prefix, word(id), id)
}

func mustAppend(db *storage.Database, table string, rows ...storage.Row) {
	t := db.Table(table)
	for _, r := range rows {
		if err := t.Append(r); err != nil {
			// Generators control both schema and rows; a mismatch is a bug.
			panic(fmt.Sprintf("datagen: %s: %v", table, err))
		}
	}
}

func mustBuild(b *schema.Builder) *schema.Schema {
	s, err := b.Build()
	if err != nil {
		// The three benchmark schemas are compiled in; a build error is a
		// bug in their declarations, never a user input — panic.
		panic("datagen: schema: " + err.Error())
	}
	return s
}

// Convenience column constructors keep schema declarations compact.
func intCol(name string) schema.Column {
	return schema.Column{Name: name, Kind: sqltypes.KindInt}
}
func pkCol(name string) schema.Column {
	return schema.Column{Name: name, Kind: sqltypes.KindInt, PrimaryKey: true}
}
func floatCol(name string) schema.Column {
	return schema.Column{Name: name, Kind: sqltypes.KindFloat}
}
func strCol(name string) schema.Column {
	return schema.Column{Name: name, Kind: sqltypes.KindString}
}
func catCol(name string) schema.Column {
	return schema.Column{Name: name, Kind: sqltypes.KindString, Categorical: true}
}

func iv(v int64) sqltypes.Value   { return sqltypes.NewInt(v) }
func fv(v float64) sqltypes.Value { return sqltypes.NewFloat(v) }
func sv(v string) sqltypes.Value  { return sqltypes.NewString(v) }
