package datagen

import (
	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/storage"
)

// JOB builds the 21-table IMDB schema used by the Join Order Benchmark:
// the title/name entity tables, the big many-to-many link tables
// (cast_info, movie_info, movie_keyword, movie_companies, ...) and the
// small dimension/type tables. FK distributions are skewed the way the
// real IMDB data is (a few prolific actors/popular movies dominate the
// link tables).
func JOB(scale float64, seed int64) *storage.Database {
	db := storage.NewDatabase(mustBuild(schemaJOB()))
	g := newGen(seed)

	nKind := 7
	nInfoType := 20
	nRoleType := 12
	nLinkType := 10
	nCompType := 4
	nCCType := 4
	nCompany := scaled(200, scale)
	nKeyword := scaled(400, scale)
	nTitle := scaled(2500, scale)
	nName := scaled(2000, scale)
	nCharName := scaled(1200, scale)
	nAkaName := scaled(400, scale)
	nAkaTitle := scaled(300, scale)
	nCastInfo := scaled(9000, scale)
	nMovieInfo := scaled(6000, scale)
	nMovieInfoIdx := scaled(1500, scale)
	nMovieKeyword := scaled(4000, scale)
	nMovieCompanies := scaled(2500, scale)
	nMovieLink := scaled(600, scale)
	nPersonInfo := scaled(1500, scale)
	nCompleteCast := scaled(500, scale)

	kinds := []string{"movie", "tv series", "tv movie", "video movie",
		"tv mini series", "video game", "episode"}
	for i := 0; i < nKind; i++ {
		mustAppend(db, "kind_type", storage.Row{iv(int64(i)), sv(kinds[i])})
	}
	infoKinds := []string{"runtimes", "color info", "genres", "languages",
		"certificates", "sound mix", "countries", "rating", "votes", "budget",
		"gross", "release dates", "locations", "tech info", "trivia", "goofs",
		"quotes", "soundtrack", "taglines", "plot"}
	for i := 0; i < nInfoType; i++ {
		mustAppend(db, "info_type", storage.Row{iv(int64(i)), sv(infoKinds[i])})
	}
	roles := []string{"actor", "actress", "producer", "writer", "cinematographer",
		"composer", "costume designer", "director", "editor", "miscellaneous crew",
		"production designer", "guest"}
	for i := 0; i < nRoleType; i++ {
		mustAppend(db, "role_type", storage.Row{iv(int64(i)), sv(roles[i])})
	}
	links := []string{"follows", "followed by", "remake of", "remade as",
		"references", "referenced in", "spoofs", "spoofed in", "features",
		"featured in"}
	for i := 0; i < nLinkType; i++ {
		mustAppend(db, "link_type", storage.Row{iv(int64(i)), sv(links[i])})
	}
	compKinds := []string{"distributors", "production companies",
		"special effects companies", "miscellaneous companies"}
	for i := 0; i < nCompType; i++ {
		mustAppend(db, "company_type", storage.Row{iv(int64(i)), sv(compKinds[i])})
	}
	ccKinds := []string{"cast", "crew", "complete", "complete+verified"}
	for i := 0; i < nCCType; i++ {
		mustAppend(db, "comp_cast_type", storage.Row{iv(int64(i)), sv(ccKinds[i])})
	}
	countries := []string{"[us]", "[gb]", "[fr]", "[de]", "[jp]", "[in]", "[it]", "[ca]"}
	for i := 0; i < nCompany; i++ {
		mustAppend(db, "company_name", storage.Row{
			iv(int64(i)), sv(nameOf("company", int64(i))), sv(g.pick(countries)),
		})
	}
	for i := 0; i < nKeyword; i++ {
		mustAppend(db, "keyword", storage.Row{iv(int64(i)), sv(nameOf("kw", int64(i)))})
	}
	for i := 0; i < nTitle; i++ {
		mustAppend(db, "title", storage.Row{
			iv(int64(i)), sv(nameOf("title", int64(i))), iv(g.fkSkew(nKind)),
			iv(g.intIn(1930, 2021)), iv(g.intIn(1, 10000)),
		})
	}
	genders := []string{"m", "f"}
	for i := 0; i < nName; i++ {
		mustAppend(db, "name", storage.Row{
			iv(int64(i)), sv(nameOf("person", int64(i))), sv(g.pick(genders)),
			iv(g.intIn(1, 10000)),
		})
	}
	for i := 0; i < nCharName; i++ {
		mustAppend(db, "char_name", storage.Row{iv(int64(i)), sv(nameOf("char", int64(i)))})
	}
	for i := 0; i < nAkaName; i++ {
		mustAppend(db, "aka_name", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nName)), sv(nameOf("aka", int64(i))),
		})
	}
	for i := 0; i < nAkaTitle; i++ {
		mustAppend(db, "aka_title", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nTitle)), sv(nameOf("akat", int64(i))),
			iv(g.intIn(1930, 2021)),
		})
	}
	notes := []string{"", "(uncredited)", "(voice)", "(archive footage)", "(as himself)"}
	for i := 0; i < nCastInfo; i++ {
		mustAppend(db, "cast_info", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nName)), iv(g.fkSkew(nTitle)),
			iv(g.fkUniform(nCharName)), iv(g.fkSkew(nRoleType)),
			iv(g.intIn(1, 100)), sv(g.pickSkew(notes)),
		})
	}
	for i := 0; i < nMovieInfo; i++ {
		mustAppend(db, "movie_info", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nTitle)), iv(g.fkUniform(nInfoType)),
			sv(nameOf("info", g.intIn(0, 500))),
		})
	}
	for i := 0; i < nMovieInfoIdx; i++ {
		mustAppend(db, "movie_info_idx", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nTitle)), iv(g.fkUniform(nInfoType)),
			fv(g.floatIn(1, 10)),
		})
	}
	for i := 0; i < nMovieKeyword; i++ {
		mustAppend(db, "movie_keyword", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nTitle)), iv(g.fkSkew(nKeyword)),
		})
	}
	for i := 0; i < nMovieCompanies; i++ {
		mustAppend(db, "movie_companies", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nTitle)), iv(g.fkSkew(nCompany)),
			iv(g.fkUniform(nCompType)),
		})
	}
	for i := 0; i < nMovieLink; i++ {
		mustAppend(db, "movie_link", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nTitle)), iv(g.fkSkew(nTitle)),
			iv(g.fkUniform(nLinkType)),
		})
	}
	for i := 0; i < nPersonInfo; i++ {
		mustAppend(db, "person_info", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nName)), iv(g.fkUniform(nInfoType)),
			sv(nameOf("pinfo", g.intIn(0, 300))),
		})
	}
	for i := 0; i < nCompleteCast; i++ {
		mustAppend(db, "complete_cast", storage.Row{
			iv(int64(i)), iv(g.fkSkew(nTitle)), iv(g.fkUniform(nCCType)),
			iv(g.fkUniform(nCCType)),
		})
	}
	return db
}

func schemaJOB() *schema.Builder {
	return schema.NewBuilder("job").
		Table("kind_type", "kt", pkCol("id"), catCol("kind")).
		Table("info_type", "it", pkCol("id"), catCol("info")).
		Table("role_type", "rt", pkCol("id"), catCol("role")).
		Table("link_type", "lt", pkCol("id"), catCol("link")).
		Table("company_type", "ct", pkCol("id"), catCol("kind")).
		Table("comp_cast_type", "cct", pkCol("id"), catCol("kind")).
		Table("company_name", "cn", pkCol("id"), strCol("name"), catCol("country_code")).
		Table("keyword", "k", pkCol("id"), strCol("keyword")).
		Table("title", "t",
			pkCol("id"), strCol("title"), intCol("kind_id"),
			intCol("production_year"), intCol("imdb_id")).
		Table("name", "n",
			pkCol("id"), strCol("name"), catCol("gender"), intCol("imdb_id")).
		Table("char_name", "chn", pkCol("id"), strCol("name")).
		Table("aka_name", "an", pkCol("id"), intCol("person_id"), strCol("name")).
		Table("aka_title", "at",
			pkCol("id"), intCol("movie_id"), strCol("title"), intCol("production_year")).
		Table("cast_info", "ci",
			pkCol("id"), intCol("person_id"), intCol("movie_id"),
			intCol("person_role_id"), intCol("role_id"), intCol("nr_order"),
			catCol("note")).
		Table("movie_info", "mi",
			pkCol("id"), intCol("movie_id"), intCol("info_type_id"), strCol("info")).
		Table("movie_info_idx", "mii",
			pkCol("id"), intCol("movie_id"), intCol("info_type_id"), floatCol("info")).
		Table("movie_keyword", "mk",
			pkCol("id"), intCol("movie_id"), intCol("keyword_id")).
		Table("movie_companies", "mc",
			pkCol("id"), intCol("movie_id"), intCol("company_id"), intCol("company_type_id")).
		Table("movie_link", "ml",
			pkCol("id"), intCol("movie_id"), intCol("linked_movie_id"), intCol("link_type_id")).
		Table("person_info", "pi",
			pkCol("id"), intCol("person_id"), intCol("info_type_id"), strCol("info")).
		Table("complete_cast", "cc",
			pkCol("id"), intCol("movie_id"), intCol("subject_id"), intCol("status_id")).
		ForeignKey("title", "kind_id", "kind_type", "id").
		ForeignKey("aka_name", "person_id", "name", "id").
		ForeignKey("aka_title", "movie_id", "title", "id").
		ForeignKey("cast_info", "person_id", "name", "id").
		ForeignKey("cast_info", "movie_id", "title", "id").
		ForeignKey("cast_info", "person_role_id", "char_name", "id").
		ForeignKey("cast_info", "role_id", "role_type", "id").
		ForeignKey("movie_info", "movie_id", "title", "id").
		ForeignKey("movie_info", "info_type_id", "info_type", "id").
		ForeignKey("movie_info_idx", "movie_id", "title", "id").
		ForeignKey("movie_info_idx", "info_type_id", "info_type", "id").
		ForeignKey("movie_keyword", "movie_id", "title", "id").
		ForeignKey("movie_keyword", "keyword_id", "keyword", "id").
		ForeignKey("movie_companies", "movie_id", "title", "id").
		ForeignKey("movie_companies", "company_id", "company_name", "id").
		ForeignKey("movie_companies", "company_type_id", "company_type", "id").
		ForeignKey("movie_link", "movie_id", "title", "id").
		ForeignKey("movie_link", "link_type_id", "link_type", "id").
		ForeignKey("person_info", "person_id", "name", "id").
		ForeignKey("person_info", "info_type_id", "info_type", "id").
		ForeignKey("complete_cast", "movie_id", "title", "id").
		ForeignKey("complete_cast", "subject_id", "comp_cast_type", "id")
}
