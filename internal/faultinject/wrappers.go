package faultinject

import (
	"context"
	"math"

	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/sqlast"
)

// Estimator decorates an estimator.Backend with injected faults. Layer it
// *inside* the resilience wrapper (resilience → faultinject → raw) so
// injected transient errors exercise the retry path.
type Estimator struct {
	inner estimator.Backend
	inj   *Injector
}

// NewEstimator wraps inner with faults from inj. The injector may be
// shared with an Executor wrapper; call numbers then interleave.
func NewEstimator(inner estimator.Backend, inj *Injector) *Estimator {
	return &Estimator{inner: inner, inj: inj}
}

// EstimateContext implements estimator.Backend, injecting the rolled
// faults before (error, panic, latency) or after (NaN poisoning) the
// real call.
func (f *Estimator) EstimateContext(ctx context.Context, st sqlast.Statement) (estimator.Estimate, error) {
	d := f.inj.roll()
	if d.panics {
		panicNow(d.call)
	}
	delay(ctx, d.latency)
	if d.err {
		return estimator.Estimate{}, &Error{Call: d.call}
	}
	est, err := f.inner.EstimateContext(ctx, st)
	if d.nan && err == nil {
		est.Card = math.NaN()
		est.Cost = math.NaN()
	}
	return est, err
}

// Executor decorates an executor.Backend with injected faults (errors,
// panics, latency; NaN does not apply to integer results).
type Executor struct {
	inner executor.Backend
	inj   *Injector
}

// NewExecutor wraps inner with faults from inj.
func NewExecutor(inner executor.Backend, inj *Injector) *Executor {
	return &Executor{inner: inner, inj: inj}
}

// ExecuteContext implements executor.Backend.
func (f *Executor) ExecuteContext(ctx context.Context, st sqlast.Statement) (*executor.Result, error) {
	d := f.inj.roll()
	if d.panics {
		panicNow(d.call)
	}
	delay(ctx, d.latency)
	if d.err {
		return nil, &Error{Call: d.call}
	}
	return f.inner.ExecuteContext(ctx, st)
}
