// Package faultinject produces deterministic, seedable fault-injecting
// decorators for the training backends. A shared Injector rolls dice per
// call — transient errors, latency spikes, panics, NaN poisoning — from a
// splitmix64 stream keyed on (seed, call number), so a given seed at a
// given call sequence always injects the same faults. Chaos tests wrap
// the estimator and executor with these decorators and assert that the
// resilience layer, the rollout quarantine, and the divergence watchdog
// absorb everything the injector throws.
//
// Injected errors carry Transient() == true, which is the sole contract
// coupling this package to the resilience layer (structural, not an
// import): resilience retries them, and the estimator cache refuses to
// memoize them.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every injected transient error; test
// assertions use errors.Is against it to separate injected faults from
// real ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Error is an injected transient backend error.
type Error struct {
	Call uint64 // 1-based injector call number that produced it
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected fault (call %d)", e.Call)
}
func (e *Error) Transient() bool { return true }
func (e *Error) Unwrap() error   { return ErrInjected }

// Config sets the fault mix. All rates are probabilities in [0, 1],
// drawn independently per call; zero disables that fault class.
type Config struct {
	// Seed keys the deterministic fault stream.
	Seed int64
	// ErrorRate is the probability a call returns an injected transient
	// error instead of reaching the backend.
	ErrorRate float64
	// LatencyRate is the probability a call is delayed by Latency before
	// reaching the backend.
	LatencyRate float64
	// Latency is the injected spike duration (default 200µs when a
	// LatencyRate is set).
	Latency time.Duration
	// PanicRate is the probability a call panics — exercising worker
	// panic recovery, not the retry path.
	PanicRate float64
	// NaNRate is the probability an estimator result is poisoned with
	// NaN cardinality and cost — exercising the divergence watchdog.
	NaNRate float64
	// PanicOnCall, when nonzero, panics on exactly that call number
	// (1-based) regardless of PanicRate — a deterministic one-shot for
	// acceptance tests.
	PanicOnCall uint64
	// NaNOnCall, when nonzero, NaN-poisons exactly that call number.
	NaNOnCall uint64
}

// Injector rolls the dice. Safe for concurrent use; the call counter is
// atomic, so under parallel rollouts the *assignment* of call numbers to
// statements is scheduling-dependent while the fault decision for each
// call number stays deterministic.
type Injector struct {
	cfg   Config
	calls atomic.Uint64
}

// New builds an Injector over cfg, normalizing defaults.
func New(cfg Config) *Injector {
	if cfg.Latency <= 0 {
		cfg.Latency = 200 * time.Microsecond
	}
	return &Injector{cfg: cfg}
}

// Calls returns how many calls the injector has refereed.
func (in *Injector) Calls() uint64 { return in.calls.Load() }

// decision is the outcome of one roll.
type decision struct {
	call    uint64
	err     bool
	panics  bool
	nan     bool
	latency time.Duration
}

// roll advances the call counter and decides this call's faults.
func (in *Injector) roll() decision {
	call := in.calls.Add(1)
	d := decision{call: call}
	if in.cfg.PanicOnCall != 0 && call == in.cfg.PanicOnCall {
		d.panics = true
		return d
	}
	if in.cfg.NaNOnCall != 0 && call == in.cfg.NaNOnCall {
		d.nan = true
		return d
	}
	if in.cfg.PanicRate > 0 && in.unit(call, 1) < in.cfg.PanicRate {
		d.panics = true
		return d
	}
	if in.cfg.ErrorRate > 0 && in.unit(call, 2) < in.cfg.ErrorRate {
		d.err = true
	}
	if in.cfg.LatencyRate > 0 && in.unit(call, 3) < in.cfg.LatencyRate {
		d.latency = in.cfg.Latency
	}
	if in.cfg.NaNRate > 0 && in.unit(call, 4) < in.cfg.NaNRate {
		d.nan = true
	}
	return d
}

// unit returns a uniform draw in [0, 1) determined by (seed, call,
// stream) — one independent stream per fault class.
func (in *Injector) unit(call, stream uint64) float64 {
	x := splitmix64(uint64(in.cfg.Seed) ^ splitmix64(call))
	x = splitmix64(x ^ splitmix64(stream))
	return float64(x>>11) / (1 << 53)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed hash used here to fan a seed out into per-call draws.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// delay sleeps an injected latency spike, cutting it short if ctx ends.
func delay(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// panicNow fires an injected panic.
func panicNow(call uint64) {
	panic(fmt.Sprintf("faultinject: injected panic (call %d)", call))
}
