package faultinject

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/sqlast"
)

// okBackend always succeeds with a fixed estimate.
type okBackend struct{ calls int }

func (b *okBackend) EstimateContext(ctx context.Context, st sqlast.Statement) (estimator.Estimate, error) {
	b.calls++
	return estimator.Estimate{Card: 10, Cost: 5}, nil
}

func TestDeterministicFaultStream(t *testing.T) {
	const n = 2000
	sample := func() []bool {
		inj := New(Config{Seed: 7, ErrorRate: 0.05})
		est := NewEstimator(&okBackend{}, inj)
		out := make([]bool, n)
		for i := range out {
			_, err := est.EstimateContext(context.Background(), nil)
			out[i] = err != nil
		}
		return out
	}
	a, b := sample(), sample()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs across identically seeded runs", i+1)
		}
		if a[i] {
			faults++
		}
	}
	// 5% of 2000 = 100 expected; allow a generous band.
	if faults < 50 || faults > 170 {
		t.Fatalf("fault count %d far from the 5%% rate over %d calls", faults, n)
	}

	other := New(Config{Seed: 8, ErrorRate: 0.05})
	est := NewEstimator(&okBackend{}, other)
	same := 0
	for i := 0; i < n; i++ {
		_, err := est.EstimateContext(context.Background(), nil)
		if (err != nil) == a[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced an identical fault stream")
	}
}

func TestZeroRatesInjectNothing(t *testing.T) {
	inj := New(Config{Seed: 1})
	bk := &okBackend{}
	est := NewEstimator(bk, inj)
	for i := 0; i < 500; i++ {
		got, err := est.EstimateContext(context.Background(), nil)
		if err != nil {
			t.Fatalf("fault injected at zero rates: %v", err)
		}
		if got.Card != 10 || got.Cost != 5 {
			t.Fatalf("result altered at zero rates: %+v", got)
		}
	}
	if bk.calls != 500 {
		t.Fatalf("backend saw %d calls, want 500", bk.calls)
	}
}

func TestInjectedErrorIsTransient(t *testing.T) {
	inj := New(Config{Seed: 1, ErrorRate: 1})
	est := NewEstimator(&okBackend{}, inj)
	_, err := est.EstimateContext(context.Background(), nil)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrap of ErrInjected", err)
	}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatalf("injected error %v is not Transient-marked", err)
	}
}

func TestOneShotPanicAndNaN(t *testing.T) {
	inj := New(Config{Seed: 3, PanicOnCall: 2, NaNOnCall: 3})
	est := NewEstimator(&okBackend{}, inj)

	if _, err := est.EstimateContext(context.Background(), nil); err != nil {
		t.Fatalf("call 1 should pass: %v", err)
	}

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("call 2 did not panic")
			}
			if !strings.Contains(r.(string), "injected panic") {
				t.Fatalf("unexpected panic payload: %v", r)
			}
		}()
		est.EstimateContext(context.Background(), nil)
	}()

	got, err := est.EstimateContext(context.Background(), nil)
	if err != nil {
		t.Fatalf("call 3: %v", err)
	}
	if !math.IsNaN(got.Card) || !math.IsNaN(got.Cost) {
		t.Fatalf("call 3 not NaN-poisoned: %+v", got)
	}

	if got, err := est.EstimateContext(context.Background(), nil); err != nil || math.IsNaN(got.Card) {
		t.Fatalf("call 4 should be clean: %+v, %v", got, err)
	}
	if inj.Calls() != 4 {
		t.Fatalf("Calls() = %d, want 4", inj.Calls())
	}
}

func TestLatencyInjection(t *testing.T) {
	inj := New(Config{Seed: 5, LatencyRate: 1, Latency: 1})
	est := NewEstimator(&okBackend{}, inj)
	// Just exercise the sleep path (1ns spike) and a ctx-cut short sleep.
	if _, err := est.EstimateContext(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inj2 := New(Config{Seed: 5, LatencyRate: 1, Latency: 10_000_000_000})
	est2 := NewEstimator(&okBackend{}, inj2)
	done := make(chan struct{})
	go func() {
		est2.EstimateContext(ctx, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-t.Context().Done():
		t.Fatal("cancelled latency spike did not return")
	}
}
