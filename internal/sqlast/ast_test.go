package sqlast

import (
	"strings"
	"testing"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqltypes"
)

func col(t, c string) schema.QualifiedColumn { return schema.QualifiedColumn{Table: t, Column: c} }

func TestCmpOpEval(t *testing.T) {
	cases := []struct {
		op   CmpOp
		cmp  int
		want bool
	}{
		{OpLt, -1, true}, {OpLt, 0, false}, {OpLt, 1, false},
		{OpGt, 1, true}, {OpGt, 0, false},
		{OpLe, 0, true}, {OpLe, 1, false},
		{OpGe, 0, true}, {OpGe, -1, false},
		{OpEq, 0, true}, {OpEq, 1, false},
		{OpNe, 1, true}, {OpNe, 0, false},
		{OpInvalid, 0, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.cmp); got != c.want {
			t.Errorf("%v.Eval(%d) = %v, want %v", c.op, c.cmp, got, c.want)
		}
	}
}

func TestCmpOpStrings(t *testing.T) {
	want := map[CmpOp]string{OpLt: "<", OpGt: ">", OpLe: "<=", OpGe: ">=", OpEq: "=", OpNe: "<>"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestAggNeedsNumeric(t *testing.T) {
	for _, a := range []AggFunc{AggSum, AggAvg, AggMax, AggMin} {
		if !a.NeedsNumeric() {
			t.Errorf("%v must need numeric", a)
		}
	}
	if AggCount.NeedsNumeric() || AggNone.NeedsNumeric() {
		t.Error("COUNT and plain columns must not need numeric")
	}
}

func TestSelectSQLBasic(t *testing.T) {
	q := &Select{
		Tables: []string{"Score"},
		Items:  []SelectItem{{Col: col("Score", "ID")}},
		Where: &Compare{Col: col("Score", "Grade"), Op: OpLt,
			Value: sqltypes.NewInt(95)},
	}
	want := "SELECT Score.ID FROM Score WHERE Score.Grade < 95"
	if got := q.SQL(); got != want {
		t.Errorf("SQL() = %q, want %q", got, want)
	}
}

func TestSelectSQLJoinGroupHavingOrder(t *testing.T) {
	q := &Select{
		Tables: []string{"Score", "Student"},
		Joins:  []JoinCond{{Left: col("Score", "ID"), Right: col("Student", "ID")}},
		Items: []SelectItem{
			{Col: col("Student", "Name")},
			{Agg: AggAvg, Col: col("Score", "Grade")},
		},
		GroupBy: []schema.QualifiedColumn{col("Student", "Name")},
		Having: &Having{Agg: AggAvg, Col: col("Score", "Grade"), Op: OpGt,
			Value: sqltypes.NewFloat(60)},
		OrderBy: []schema.QualifiedColumn{col("Student", "Name")},
	}
	got := q.SQL()
	for _, frag := range []string{
		"SELECT Student.Name, AVG(Score.Grade)",
		"FROM Score JOIN Student ON Score.ID = Student.ID",
		"GROUP BY Student.Name",
		"HAVING AVG(Score.Grade) > 60",
		"ORDER BY Student.Name",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("SQL() = %q missing %q", got, frag)
		}
	}
	if !q.HasAggregate() {
		t.Error("HasAggregate must be true")
	}
}

func TestPredicateSQLForms(t *testing.T) {
	sub := &Select{
		Tables: []string{"Student"},
		Items:  []SelectItem{{Col: col("Student", "ID")}},
	}
	cases := []struct {
		p    Predicate
		want string
	}{
		{&In{Col: col("Score", "ID"), Sub: sub}, "Score.ID IN (SELECT Student.ID FROM Student)"},
		{&In{Col: col("Score", "ID"), Sub: sub, Negate: true}, "Score.ID NOT IN (SELECT Student.ID FROM Student)"},
		{&Exists{Sub: sub}, "EXISTS (SELECT Student.ID FROM Student)"},
		{&Exists{Sub: sub, Negate: true}, "NOT EXISTS (SELECT Student.ID FROM Student)"},
		{&CompareSub{Col: col("Score", "Grade"), Op: OpGe, Sub: sub}, "Score.Grade >= (SELECT Student.ID FROM Student)"},
		{&Not{Inner: &Compare{Col: col("A", "x"), Op: OpEq, Value: sqltypes.NewInt(1)}}, "NOT (A.x = 1)"},
		{&Or{
			Left:  &Compare{Col: col("A", "x"), Op: OpEq, Value: sqltypes.NewInt(1)},
			Right: &Compare{Col: col("A", "x"), Op: OpEq, Value: sqltypes.NewInt(2)},
		}, "(A.x = 1 OR A.x = 2)"},
		{&And{
			Left:  &Compare{Col: col("A", "x"), Op: OpGt, Value: sqltypes.NewInt(1)},
			Right: &Compare{Col: col("A", "y"), Op: OpLt, Value: sqltypes.NewInt(9)},
		}, "A.x > 1 AND A.y < 9"},
	}
	for _, c := range cases {
		if got := c.p.SQL(); got != c.want {
			t.Errorf("SQL() = %q, want %q", got, c.want)
		}
	}
}

func TestInsertUpdateDeleteSQL(t *testing.T) {
	ins := &Insert{Table: "Student", Values: []sqltypes.Value{
		sqltypes.NewInt(1), sqltypes.NewString("Bob"),
	}}
	if got := ins.SQL(); got != "INSERT INTO Student VALUES (1, 'Bob')" {
		t.Errorf("Insert SQL = %q", got)
	}
	sub := &Select{Tables: []string{"Student"}, Items: []SelectItem{{Col: col("Student", "ID")}}}
	ins2 := &Insert{Table: "Student", Sub: sub}
	if got := ins2.SQL(); got != "INSERT INTO Student (SELECT Student.ID FROM Student)" {
		t.Errorf("Insert-select SQL = %q", got)
	}
	up := &Update{Table: "Student",
		Sets:  []SetClause{{Col: "Name", Value: sqltypes.NewString("X")}},
		Where: &Compare{Col: col("Student", "ID"), Op: OpEq, Value: sqltypes.NewInt(3)},
	}
	if got := up.SQL(); got != "UPDATE Student SET Name = 'X' WHERE Student.ID = 3" {
		t.Errorf("Update SQL = %q", got)
	}
	del := &Delete{Table: "Student",
		Where: &Compare{Col: col("Student", "ID"), Op: OpGt, Value: sqltypes.NewInt(10)}}
	if got := del.SQL(); got != "DELETE FROM Student WHERE Student.ID > 10" {
		t.Errorf("Delete SQL = %q", got)
	}
	delNoWhere := &Delete{Table: "Student"}
	if got := delNoWhere.SQL(); got != "DELETE FROM Student" {
		t.Errorf("Delete (no where) SQL = %q", got)
	}
}

func TestWalkPredicatesVisitsAll(t *testing.T) {
	p := &And{
		Left: &Or{
			Left:  &Compare{Col: col("A", "x"), Op: OpEq, Value: sqltypes.NewInt(1)},
			Right: &Not{Inner: &Compare{Col: col("A", "y"), Op: OpEq, Value: sqltypes.NewInt(2)}},
		},
		Right: &Compare{Col: col("A", "z"), Op: OpEq, Value: sqltypes.NewInt(3)},
	}
	count := 0
	WalkPredicates(p, func(Predicate) { count++ })
	// and, or, cmp, not, cmp, cmp = 6 nodes.
	if count != 6 {
		t.Errorf("visited %d nodes, want 6", count)
	}
	WalkPredicates(nil, func(Predicate) { t.Error("nil predicate must not visit") })
}

func TestSubqueriesAndCountPredicates(t *testing.T) {
	inner := &Select{
		Tables: []string{"Student"},
		Items:  []SelectItem{{Col: col("Student", "ID")}},
		Where:  &Compare{Col: col("Student", "ID"), Op: OpLt, Value: sqltypes.NewInt(5)},
	}
	q := &Select{
		Tables: []string{"Score"},
		Items:  []SelectItem{{Col: col("Score", "ID")}},
		Where: &And{
			Left:  &In{Col: col("Score", "ID"), Sub: inner},
			Right: &Compare{Col: col("Score", "Grade"), Op: OpGt, Value: sqltypes.NewInt(50)},
		},
		Having: nil,
	}
	subs := Subqueries(q)
	if len(subs) != 1 || subs[0] != inner {
		t.Errorf("Subqueries = %v", subs)
	}
	// Leaves: IN, outer compare, inner compare = 3.
	if got := CountPredicates(q); got != 3 {
		t.Errorf("CountPredicates = %d, want 3", got)
	}

	del := &Delete{Table: "Score", Where: &Exists{Sub: inner}}
	if len(Subqueries(del)) != 1 {
		t.Error("Delete subquery not found")
	}
	if got := CountPredicates(del); got != 2 { // EXISTS + inner compare
		t.Errorf("CountPredicates(delete) = %d, want 2", got)
	}

	ins := &Insert{Table: "Student", Sub: inner}
	if len(Subqueries(ins)) != 1 {
		t.Error("Insert subquery not found")
	}

	up := &Update{Table: "Score", Where: &CompareSub{Col: col("Score", "ID"), Op: OpEq, Sub: inner}}
	if len(Subqueries(up)) != 1 {
		t.Error("Update subquery not found")
	}
	if got := CountPredicates(up); got != 2 {
		t.Errorf("CountPredicates(update) = %d, want 2", got)
	}
}

func TestHavingWithSubquery(t *testing.T) {
	sub := &Select{
		Tables: []string{"Score"},
		Items:  []SelectItem{{Agg: AggAvg, Col: col("Score", "Grade")}},
	}
	h := &Having{Agg: AggMax, Col: col("Score", "Grade"), Op: OpGt, Sub: sub}
	want := "MAX(Score.Grade) > (SELECT AVG(Score.Grade) FROM Score)"
	if got := h.SQL(); got != want {
		t.Errorf("Having SQL = %q, want %q", got, want)
	}
	q := &Select{
		Tables:  []string{"Score"},
		Items:   []SelectItem{{Agg: AggCount, Col: col("Score", "ID")}},
		GroupBy: []schema.QualifiedColumn{col("Score", "Course")},
		Having:  h,
	}
	if got := len(Subqueries(q)); got != 1 {
		t.Errorf("having subquery not collected: %d", got)
	}
}
