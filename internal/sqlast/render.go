package sqlast

import (
	"strings"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqltypes"
)

// Dialect controls the engine-specific surface syntax of rendered SQL:
// identifier quoting, literal formatting, parameter placeholders and the
// LIMIT clause. The AST itself is dialect-free; Render walks it once and
// consults the dialect only at the leaves, so adding an engine means
// implementing this interface, not a renderer.
//
// The canonical implementation is Native — the dialect the in-tree
// lexer/parser round-trips with and the one every SQL() method uses.
// Engine-specific dialects (ANSI, postgres, mysql, sqlite) live in
// internal/engine, next to the drivers that speak them.
type Dialect interface {
	// Name identifies the dialect ("native", "postgres", ...).
	Name() string
	// QuoteIdent renders one identifier, quoting it if the dialect
	// requires (reserved word, unusual characters, case folding).
	QuoteIdent(ident string) string
	// Literal renders a constant value as a SQL literal.
	Literal(v sqltypes.Value) string
	// Placeholder renders the n-th (1-based) bind parameter ("?", "$1").
	Placeholder(n int) string
	// Limit appends the dialect's row-limit syntax to a rendered SELECT.
	// Dialect-specific probe queries (the database/sql adapter's
	// cardinality fallback) use it; generated workloads do not.
	Limit(sql string, n int) string
}

// Native is the dialect of the in-tree stack: the renderer the
// lexer/parser round-trips with and the FSM's canonical token stream.
// Identifiers are emitted verbatim unless quoting is required for
// re-parsing (reserved words, non-identifier characters); literals use
// sqltypes.Value.SQL.
var Native Dialect = nativeDialect{}

type nativeDialect struct{}

func (nativeDialect) Name() string { return "native" }

func (nativeDialect) QuoteIdent(ident string) string {
	if IdentNeedsQuoting(ident) {
		return QuoteIdentANSI(ident)
	}
	return ident
}

func (nativeDialect) Literal(v sqltypes.Value) string { return v.SQL() }

func (nativeDialect) Placeholder(n int) string { return "?" }

func (nativeDialect) Limit(sql string, n int) string { return sql }

// reservedWords mirrors the parser's keyword table: an identifier spelled
// like one of these must be quoted or the lexer reads it back as a
// keyword and the render/parse fixed point breaks. (The parser cannot be
// imported here — it depends on this package — so the set is duplicated;
// parser tests assert the two stay in sync.)
var reservedWords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "ON": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "EXISTS": true, "LIKE": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"MAX": true, "MIN": true, "SUM": true, "AVG": true, "COUNT": true,
}

// ReservedWord reports whether ident collides with a grammar keyword
// (case-insensitively).
func ReservedWord(ident string) bool { return reservedWords[strings.ToUpper(ident)] }

// IdentNeedsQuoting reports whether ident can NOT appear bare in native
// SQL: it is empty, a reserved word, starts with a non-letter, or
// contains characters outside [A-Za-z0-9_].
func IdentNeedsQuoting(ident string) bool {
	if ident == "" || ReservedWord(ident) {
		return true
	}
	for i := 0; i < len(ident); i++ {
		c := ident[i]
		switch {
		case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return true
			}
		default:
			return true
		}
	}
	return false
}

// QuoteIdentANSI double-quotes an identifier, doubling embedded quotes —
// the SQL-standard form shared by the native, ANSI, postgres and sqlite
// dialects.
func QuoteIdentANSI(ident string) string {
	return `"` + strings.ReplaceAll(ident, `"`, `""`) + `"`
}

// Render renders a statement in the given dialect. Render(st, Native) is
// the canonical form and equals st.SQL().
func Render(st Statement, d Dialect) string {
	r := renderer{d: d}
	r.statement(st)
	return r.b.String()
}

// RenderPredicate renders one predicate in the given dialect.
func RenderPredicate(p Predicate, d Dialect) string {
	r := renderer{d: d}
	r.predicate(p)
	return r.b.String()
}

// renderer walks the AST once, emitting into one builder and consulting
// the dialect at identifier and literal leaves only.
type renderer struct {
	b strings.Builder
	d Dialect
}

func (r *renderer) s(s string)                    { r.b.WriteString(s) }
func (r *renderer) ident(id string)               { r.b.WriteString(r.d.QuoteIdent(id)) }
func (r *renderer) value(v sqltypes.Value)        { r.b.WriteString(r.d.Literal(v)) }
func (r *renderer) qcol(q schema.QualifiedColumn) { r.ident(q.Table); r.s("."); r.ident(q.Column) }

func (r *renderer) statement(st Statement) {
	switch t := st.(type) {
	case *Select:
		r.selectStmt(t)
	case *Insert:
		r.insertStmt(t)
	case *Update:
		r.updateStmt(t)
	case *Delete:
		r.deleteStmt(t)
	}
}

func (r *renderer) selectStmt(s *Select) {
	r.s("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			r.s(", ")
		}
		r.item(it)
	}
	r.s(" FROM ")
	r.ident(s.Tables[0])
	for i := 1; i < len(s.Tables); i++ {
		j := s.Joins[i-1]
		r.s(" JOIN ")
		r.ident(s.Tables[i])
		r.s(" ON ")
		r.qcol(j.Left)
		r.s(" = ")
		r.qcol(j.Right)
	}
	if s.Where != nil {
		r.s(" WHERE ")
		r.predicate(s.Where)
	}
	if len(s.GroupBy) > 0 {
		r.s(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				r.s(", ")
			}
			r.qcol(c)
		}
	}
	if s.Having != nil {
		r.s(" HAVING ")
		r.having(s.Having)
	}
	if len(s.OrderBy) > 0 {
		r.s(" ORDER BY ")
		for i, c := range s.OrderBy {
			if i > 0 {
				r.s(", ")
			}
			r.qcol(c)
		}
	}
}

func (r *renderer) item(it SelectItem) {
	if it.Agg == AggNone {
		r.qcol(it.Col)
		return
	}
	r.s(it.Agg.String())
	r.s("(")
	r.qcol(it.Col)
	r.s(")")
}

func (r *renderer) having(h *Having) {
	r.s(h.Agg.String())
	r.s("(")
	r.qcol(h.Col)
	r.s(") ")
	r.s(h.Op.String())
	r.s(" ")
	if h.Sub != nil {
		r.s("(")
		r.selectStmt(h.Sub)
		r.s(")")
		return
	}
	r.value(h.Value)
}

func (r *renderer) predicate(p Predicate) {
	switch t := p.(type) {
	case *Compare:
		r.qcol(t.Col)
		r.s(" ")
		r.s(t.Op.String())
		r.s(" ")
		r.value(t.Value)
	case *CompareSub:
		r.qcol(t.Col)
		r.s(" ")
		r.s(t.Op.String())
		r.s(" (")
		r.selectStmt(t.Sub)
		r.s(")")
	case *Like:
		r.qcol(t.Col)
		r.s(" LIKE ")
		r.value(sqltypes.NewString(t.Pattern))
	case *In:
		r.qcol(t.Col)
		if t.Negate {
			r.s(" NOT IN (")
		} else {
			r.s(" IN (")
		}
		r.selectStmt(t.Sub)
		r.s(")")
	case *Exists:
		if t.Negate {
			r.s("NOT ")
		}
		r.s("EXISTS (")
		r.selectStmt(t.Sub)
		r.s(")")
	case *And:
		r.predicate(t.Left)
		r.s(" AND ")
		r.predicate(t.Right)
	case *Or:
		r.s("(")
		r.predicate(t.Left)
		r.s(" OR ")
		r.predicate(t.Right)
		r.s(")")
	case *Not:
		r.s("NOT (")
		r.predicate(t.Inner)
		r.s(")")
	}
}

func (r *renderer) insertStmt(s *Insert) {
	r.s("INSERT INTO ")
	r.ident(s.Table)
	if s.Sub != nil {
		r.s(" (")
		r.selectStmt(s.Sub)
		r.s(")")
		return
	}
	r.s(" VALUES (")
	for i, v := range s.Values {
		if i > 0 {
			r.s(", ")
		}
		r.value(v)
	}
	r.s(")")
}

func (r *renderer) updateStmt(s *Update) {
	r.s("UPDATE ")
	r.ident(s.Table)
	r.s(" SET ")
	for i, sc := range s.Sets {
		if i > 0 {
			r.s(", ")
		}
		r.ident(sc.Col)
		r.s(" = ")
		r.value(sc.Value)
	}
	if s.Where != nil {
		r.s(" WHERE ")
		r.predicate(s.Where)
	}
}

func (r *renderer) deleteStmt(s *Delete) {
	r.s("DELETE FROM ")
	r.ident(s.Table)
	if s.Where != nil {
		r.s(" WHERE ")
		r.predicate(s.Where)
	}
}
