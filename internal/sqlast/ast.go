// Package sqlast defines the abstract syntax tree for the SQL subset of the
// paper's grammar (Table 1): SELECT-PROJECT-JOIN queries with conjunctive/
// disjunctive predicates, aggregation with GROUP BY / HAVING, ORDER BY,
// nested queries in WHERE and HAVING (scalar comparison, IN, EXISTS), and
// INSERT / UPDATE / DELETE statements.
//
// Joins are restricted to the schema's PK–FK join graph and carry explicit
// equi-join conditions ("the corresponding join keys will be automatically
// added", §5). All subqueries are uncorrelated, matching the grammar
// `WHERE attr operator (value | QUERY)`.
package sqlast

import (
	"strings"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqltypes"
)

// CmpOp is a comparison operator. The paper supports {>, =, <, >=, <=} plus
// <> in the grammar table.
type CmpOp uint8

const (
	OpInvalid CmpOp = iota
	OpLt
	OpGt
	OpLe
	OpGe
	OpEq
	OpNe
)

// String renders the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	default:
		return "?op?"
	}
}

// Eval applies the operator to a comparison result from sqltypes.Compare.
func (o CmpOp) Eval(cmp int) bool {
	switch o {
	case OpLt:
		return cmp < 0
	case OpGt:
		return cmp > 0
	case OpLe:
		return cmp <= 0
	case OpGe:
		return cmp >= 0
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	default:
		return false
	}
}

// AggFunc is an aggregate function, or AggNone for a plain column reference.
type AggFunc uint8

const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMax
	AggMin
)

// String renders the SQL spelling of the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMax:
		return "MAX"
	case AggMin:
		return "MIN"
	default:
		return ""
	}
}

// NeedsNumeric reports whether the aggregate requires a numeric input
// column (§5: "only numerical attributes can be included in
// average/sum/max/min aggregation operations").
func (a AggFunc) NeedsNumeric() bool {
	switch a {
	case AggSum, AggAvg, AggMax, AggMin:
		return true
	default:
		return false
	}
}

// SelectItem is one projection: a plain column or agg(column).
type SelectItem struct {
	Agg AggFunc
	Col schema.QualifiedColumn
}

// SQL renders the projection term in the native dialect.
func (s SelectItem) SQL() string {
	r := renderer{d: Native}
	r.item(s)
	return r.b.String()
}

// JoinCond is one auto-derived equi-join condition between a newly joined
// table and a table already in scope.
type JoinCond struct {
	Left  schema.QualifiedColumn // column of the already-joined side
	Right schema.QualifiedColumn // column of the newly joined table
}

// Predicate is a boolean expression over one row scope.
type Predicate interface {
	isPredicate()
	// SQL renders the predicate.
	SQL() string
}

// Compare is `col op literal`.
type Compare struct {
	Col   schema.QualifiedColumn
	Op    CmpOp
	Value sqltypes.Value
}

func (*Compare) isPredicate() {}

// SQL renders the comparison in the native dialect.
func (c *Compare) SQL() string { return RenderPredicate(c, Native) }

// CompareSub is `col op (subquery)` where the subquery yields a scalar
// (single aggregate select item, no GROUP BY).
type CompareSub struct {
	Col schema.QualifiedColumn
	Op  CmpOp
	Sub *Select
}

func (*CompareSub) isPredicate() {}

// SQL renders the scalar-subquery comparison in the native dialect.
func (c *CompareSub) SQL() string { return RenderPredicate(c, Native) }

// Like is `col LIKE 'pattern'` where pattern uses % as the multi-character
// wildcard. The paper's §5 leaves LIKE as future work and sketches the
// implementation used here: the keyword joins the FSM and patterns are
// substrings sampled from the column's values.
type Like struct {
	Col     schema.QualifiedColumn
	Pattern string
}

func (*Like) isPredicate() {}

// SQL renders the LIKE predicate in the native dialect.
func (p *Like) SQL() string { return RenderPredicate(p, Native) }

// MatchLike evaluates a LIKE pattern (with % wildcards only) against a
// string, SQL-style: the pattern must cover the whole input.
func MatchLike(s, pattern string) bool {
	segments := strings.Split(pattern, "%")
	// No wildcard: exact match.
	if len(segments) == 1 {
		return s == pattern
	}
	// Leading segment anchors at the start.
	if segments[0] != "" {
		if !strings.HasPrefix(s, segments[0]) {
			return false
		}
		s = s[len(segments[0]):]
	}
	// Trailing segment anchors at the end.
	last := segments[len(segments)-1]
	if last != "" {
		if !strings.HasSuffix(s, last) {
			return false
		}
		s = s[:len(s)-len(last)]
	}
	// Middle segments match greedily in order.
	for _, seg := range segments[1 : len(segments)-1] {
		if seg == "" {
			continue
		}
		idx := strings.Index(s, seg)
		if idx < 0 {
			return false
		}
		s = s[idx+len(seg):]
	}
	return true
}

// In is `col [NOT] IN (subquery)`; the subquery projects a single column.
type In struct {
	Col    schema.QualifiedColumn
	Sub    *Select
	Negate bool
}

func (*In) isPredicate() {}

// SQL renders the IN predicate in the native dialect.
func (p *In) SQL() string { return RenderPredicate(p, Native) }

// Exists is `[NOT] EXISTS (subquery)`.
type Exists struct {
	Sub    *Select
	Negate bool
}

func (*Exists) isPredicate() {}

// SQL renders the EXISTS predicate in the native dialect.
func (p *Exists) SQL() string { return RenderPredicate(p, Native) }

// And is a conjunction.
type And struct{ Left, Right Predicate }

func (*And) isPredicate() {}

// SQL renders the conjunction (left-assoc, no parens needed for AND chains;
// OR operands are parenthesized at the Or level).
func (p *And) SQL() string { return RenderPredicate(p, Native) }

// Or is a disjunction. Rendering parenthesizes both sides to keep the
// round-trip through the parser unambiguous.
type Or struct{ Left, Right Predicate }

func (*Or) isPredicate() {}

// SQL renders the disjunction.
func (p *Or) SQL() string { return RenderPredicate(p, Native) }

// Not negates a predicate.
type Not struct{ Inner Predicate }

func (*Not) isPredicate() {}

// SQL renders the negation.
func (p *Not) SQL() string { return RenderPredicate(p, Native) }

// Having is `agg(attr) op (value | subquery)`.
type Having struct {
	Agg   AggFunc
	Col   schema.QualifiedColumn
	Op    CmpOp
	Value sqltypes.Value // used when Sub == nil
	Sub   *Select
}

// SQL renders the HAVING condition in the native dialect.
func (h *Having) SQL() string {
	r := renderer{d: Native}
	r.having(h)
	return r.b.String()
}

// Select is a SELECT query (possibly a subquery).
type Select struct {
	// Tables in join order; Tables[0] is the anchor, Tables[i] (i>0) joins
	// to an earlier table through Joins[i-1].
	Tables  []string
	Joins   []JoinCond
	Items   []SelectItem
	Where   Predicate // nil when absent
	GroupBy []schema.QualifiedColumn
	Having  *Having
	OrderBy []schema.QualifiedColumn
}

// Statement is any executable SQL statement.
type Statement interface {
	isStatement()
	SQL() string
}

func (*Select) isStatement() {}

// SQL renders the canonical form of the query — Render in the native
// dialect, the fixed point of the parser round-trip.
func (s *Select) SQL() string { return Render(s, Native) }

// HasAggregate reports whether any select item aggregates.
func (s *Select) HasAggregate() bool {
	for _, it := range s.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

// Insert is `INSERT INTO table VALUES (...)` or `INSERT INTO table (SELECT ...)`.
type Insert struct {
	Table  string
	Values []sqltypes.Value // used when Sub == nil
	Sub    *Select
}

func (*Insert) isStatement() {}

// SQL renders the insert statement in the native dialect.
func (s *Insert) SQL() string { return Render(s, Native) }

// SetClause is one `col = value` assignment of an UPDATE.
type SetClause struct {
	Col   string // unqualified: UPDATE has a single-table scope
	Value sqltypes.Value
}

// Update is `UPDATE table SET col = v, ... WHERE pred`.
type Update struct {
	Table string
	Sets  []SetClause
	Where Predicate // nil when absent
}

func (*Update) isStatement() {}

// SQL renders the update statement in the native dialect.
func (s *Update) SQL() string { return Render(s, Native) }

// Delete is `DELETE FROM table WHERE pred`.
type Delete struct {
	Table string
	Where Predicate // nil when absent
}

func (*Delete) isStatement() {}

// SQL renders the delete statement in the native dialect.
func (s *Delete) SQL() string { return Render(s, Native) }

// WalkPredicates calls fn on every predicate node of p in depth-first
// order, descending into AND/OR/NOT but not into subqueries.
func WalkPredicates(p Predicate, fn func(Predicate)) {
	if p == nil {
		return
	}
	fn(p)
	switch t := p.(type) {
	case *And:
		WalkPredicates(t.Left, fn)
		WalkPredicates(t.Right, fn)
	case *Or:
		WalkPredicates(t.Left, fn)
		WalkPredicates(t.Right, fn)
	case *Not:
		WalkPredicates(t.Inner, fn)
	}
}

// Subqueries returns every subquery directly referenced by the statement's
// predicates and HAVING clause (not recursing into nested levels).
func Subqueries(st Statement) []*Select {
	var out []*Select
	collect := func(p Predicate) {
		switch t := p.(type) {
		case *CompareSub:
			out = append(out, t.Sub)
		case *In:
			out = append(out, t.Sub)
		case *Exists:
			out = append(out, t.Sub)
		}
	}
	switch t := st.(type) {
	case *Select:
		WalkPredicates(t.Where, collect)
		if t.Having != nil && t.Having.Sub != nil {
			out = append(out, t.Having.Sub)
		}
	case *Insert:
		if t.Sub != nil {
			out = append(out, t.Sub)
		}
	case *Update:
		WalkPredicates(t.Where, collect)
	case *Delete:
		WalkPredicates(t.Where, collect)
	}
	return out
}

// CountPredicates returns the number of leaf predicates (comparisons,
// IN, EXISTS) in the statement's WHERE clause, counting subquery bodies
// recursively. Used by the Fig 10 distribution analysis.
func CountPredicates(st Statement) int {
	n := 0
	var walkSel func(s *Select)
	countLeaf := func(p Predicate) {
		switch p.(type) {
		case *Compare, *CompareSub, *In, *Exists, *Like:
			n++
		}
	}
	walkPred := func(p Predicate) {
		WalkPredicates(p, countLeaf)
	}
	walkSel = func(s *Select) {
		if s == nil {
			return
		}
		walkPred(s.Where)
		for _, sub := range Subqueries(s) {
			walkSel(sub)
		}
	}
	switch t := st.(type) {
	case *Select:
		walkSel(t)
	case *Update:
		walkPred(t.Where)
		for _, sub := range Subqueries(t) {
			walkSel(sub)
		}
	case *Delete:
		walkPred(t.Where)
		for _, sub := range Subqueries(t) {
			walkSel(sub)
		}
	case *Insert:
		walkSel(t.Sub)
	}
	return n
}

// ClonePredicate deep-copies a predicate tree. Subquery pointers are
// shared: subqueries are treated as immutable once built.
func ClonePredicate(p Predicate) Predicate {
	switch t := p.(type) {
	case nil:
		return nil
	case *Compare:
		c := *t
		return &c
	case *CompareSub:
		c := *t
		return &c
	case *Like:
		c := *t
		return &c
	case *In:
		c := *t
		return &c
	case *Exists:
		c := *t
		return &c
	case *And:
		return &And{Left: ClonePredicate(t.Left), Right: ClonePredicate(t.Right)}
	case *Or:
		return &Or{Left: ClonePredicate(t.Left), Right: ClonePredicate(t.Right)}
	case *Not:
		return &Not{Inner: ClonePredicate(t.Inner)}
	default:
		return p
	}
}

// CloneStatement deep-copies a statement's own structure (slices and
// predicate trees); nested subquery pointers are shared.
func CloneStatement(st Statement) Statement {
	switch t := st.(type) {
	case *Select:
		cp := *t
		cp.Tables = append([]string(nil), t.Tables...)
		cp.Joins = append([]JoinCond(nil), t.Joins...)
		cp.Items = append([]SelectItem(nil), t.Items...)
		cp.GroupBy = append([]schema.QualifiedColumn(nil), t.GroupBy...)
		cp.OrderBy = append([]schema.QualifiedColumn(nil), t.OrderBy...)
		cp.Where = ClonePredicate(t.Where)
		if t.Having != nil {
			h := *t.Having
			cp.Having = &h
		}
		return &cp
	case *Insert:
		cp := *t
		cp.Values = append([]sqltypes.Value(nil), t.Values...)
		return &cp
	case *Update:
		cp := *t
		cp.Sets = append([]SetClause(nil), t.Sets...)
		cp.Where = ClonePredicate(t.Where)
		return &cp
	case *Delete:
		cp := *t
		cp.Where = ClonePredicate(t.Where)
		return &cp
	default:
		return st
	}
}
