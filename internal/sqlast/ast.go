// Package sqlast defines the abstract syntax tree for the SQL subset of the
// paper's grammar (Table 1): SELECT-PROJECT-JOIN queries with conjunctive/
// disjunctive predicates, aggregation with GROUP BY / HAVING, ORDER BY,
// nested queries in WHERE and HAVING (scalar comparison, IN, EXISTS), and
// INSERT / UPDATE / DELETE statements.
//
// Joins are restricted to the schema's PK–FK join graph and carry explicit
// equi-join conditions ("the corresponding join keys will be automatically
// added", §5). All subqueries are uncorrelated, matching the grammar
// `WHERE attr operator (value | QUERY)`.
package sqlast

import (
	"strings"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqltypes"
)

// CmpOp is a comparison operator. The paper supports {>, =, <, >=, <=} plus
// <> in the grammar table.
type CmpOp uint8

const (
	OpInvalid CmpOp = iota
	OpLt
	OpGt
	OpLe
	OpGe
	OpEq
	OpNe
)

// String renders the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	default:
		return "?op?"
	}
}

// Eval applies the operator to a comparison result from sqltypes.Compare.
func (o CmpOp) Eval(cmp int) bool {
	switch o {
	case OpLt:
		return cmp < 0
	case OpGt:
		return cmp > 0
	case OpLe:
		return cmp <= 0
	case OpGe:
		return cmp >= 0
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	default:
		return false
	}
}

// AggFunc is an aggregate function, or AggNone for a plain column reference.
type AggFunc uint8

const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMax
	AggMin
)

// String renders the SQL spelling of the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMax:
		return "MAX"
	case AggMin:
		return "MIN"
	default:
		return ""
	}
}

// NeedsNumeric reports whether the aggregate requires a numeric input
// column (§5: "only numerical attributes can be included in
// average/sum/max/min aggregation operations").
func (a AggFunc) NeedsNumeric() bool {
	switch a {
	case AggSum, AggAvg, AggMax, AggMin:
		return true
	default:
		return false
	}
}

// SelectItem is one projection: a plain column or agg(column).
type SelectItem struct {
	Agg AggFunc
	Col schema.QualifiedColumn
}

// SQL renders the projection term.
func (s SelectItem) SQL() string {
	if s.Agg == AggNone {
		return s.Col.String()
	}
	return s.Agg.String() + "(" + s.Col.String() + ")"
}

// JoinCond is one auto-derived equi-join condition between a newly joined
// table and a table already in scope.
type JoinCond struct {
	Left  schema.QualifiedColumn // column of the already-joined side
	Right schema.QualifiedColumn // column of the newly joined table
}

// Predicate is a boolean expression over one row scope.
type Predicate interface {
	isPredicate()
	// SQL renders the predicate.
	SQL() string
}

// Compare is `col op literal`.
type Compare struct {
	Col   schema.QualifiedColumn
	Op    CmpOp
	Value sqltypes.Value
}

func (*Compare) isPredicate() {}

// SQL renders the comparison.
func (c *Compare) SQL() string {
	return c.Col.String() + " " + c.Op.String() + " " + c.Value.SQL()
}

// CompareSub is `col op (subquery)` where the subquery yields a scalar
// (single aggregate select item, no GROUP BY).
type CompareSub struct {
	Col schema.QualifiedColumn
	Op  CmpOp
	Sub *Select
}

func (*CompareSub) isPredicate() {}

// SQL renders the scalar-subquery comparison.
func (c *CompareSub) SQL() string {
	return c.Col.String() + " " + c.Op.String() + " (" + c.Sub.SQL() + ")"
}

// Like is `col LIKE 'pattern'` where pattern uses % as the multi-character
// wildcard. The paper's §5 leaves LIKE as future work and sketches the
// implementation used here: the keyword joins the FSM and patterns are
// substrings sampled from the column's values.
type Like struct {
	Col     schema.QualifiedColumn
	Pattern string
}

func (*Like) isPredicate() {}

// SQL renders the LIKE predicate.
func (p *Like) SQL() string {
	return p.Col.String() + " LIKE " + sqltypes.NewString(p.Pattern).SQL()
}

// MatchLike evaluates a LIKE pattern (with % wildcards only) against a
// string, SQL-style: the pattern must cover the whole input.
func MatchLike(s, pattern string) bool {
	segments := strings.Split(pattern, "%")
	// No wildcard: exact match.
	if len(segments) == 1 {
		return s == pattern
	}
	// Leading segment anchors at the start.
	if segments[0] != "" {
		if !strings.HasPrefix(s, segments[0]) {
			return false
		}
		s = s[len(segments[0]):]
	}
	// Trailing segment anchors at the end.
	last := segments[len(segments)-1]
	if last != "" {
		if !strings.HasSuffix(s, last) {
			return false
		}
		s = s[:len(s)-len(last)]
	}
	// Middle segments match greedily in order.
	for _, seg := range segments[1 : len(segments)-1] {
		if seg == "" {
			continue
		}
		idx := strings.Index(s, seg)
		if idx < 0 {
			return false
		}
		s = s[idx+len(seg):]
	}
	return true
}

// In is `col [NOT] IN (subquery)`; the subquery projects a single column.
type In struct {
	Col    schema.QualifiedColumn
	Sub    *Select
	Negate bool
}

func (*In) isPredicate() {}

// SQL renders the IN predicate.
func (p *In) SQL() string {
	kw := " IN ("
	if p.Negate {
		kw = " NOT IN ("
	}
	return p.Col.String() + kw + p.Sub.SQL() + ")"
}

// Exists is `[NOT] EXISTS (subquery)`.
type Exists struct {
	Sub    *Select
	Negate bool
}

func (*Exists) isPredicate() {}

// SQL renders the EXISTS predicate.
func (p *Exists) SQL() string {
	kw := "EXISTS ("
	if p.Negate {
		kw = "NOT EXISTS ("
	}
	return kw + p.Sub.SQL() + ")"
}

// And is a conjunction.
type And struct{ Left, Right Predicate }

func (*And) isPredicate() {}

// SQL renders the conjunction (left-assoc, no parens needed for AND chains;
// OR operands are parenthesized at the Or level).
func (p *And) SQL() string { return p.Left.SQL() + " AND " + p.Right.SQL() }

// Or is a disjunction. Rendering parenthesizes both sides to keep the
// round-trip through the parser unambiguous.
type Or struct{ Left, Right Predicate }

func (*Or) isPredicate() {}

// SQL renders the disjunction.
func (p *Or) SQL() string { return "(" + p.Left.SQL() + " OR " + p.Right.SQL() + ")" }

// Not negates a predicate.
type Not struct{ Inner Predicate }

func (*Not) isPredicate() {}

// SQL renders the negation.
func (p *Not) SQL() string { return "NOT (" + p.Inner.SQL() + ")" }

// Having is `agg(attr) op (value | subquery)`.
type Having struct {
	Agg   AggFunc
	Col   schema.QualifiedColumn
	Op    CmpOp
	Value sqltypes.Value // used when Sub == nil
	Sub   *Select
}

// SQL renders the HAVING condition.
func (h *Having) SQL() string {
	lhs := h.Agg.String() + "(" + h.Col.String() + ") " + h.Op.String() + " "
	if h.Sub != nil {
		return lhs + "(" + h.Sub.SQL() + ")"
	}
	return lhs + h.Value.SQL()
}

// Select is a SELECT query (possibly a subquery).
type Select struct {
	// Tables in join order; Tables[0] is the anchor, Tables[i] (i>0) joins
	// to an earlier table through Joins[i-1].
	Tables  []string
	Joins   []JoinCond
	Items   []SelectItem
	Where   Predicate // nil when absent
	GroupBy []schema.QualifiedColumn
	Having  *Having
	OrderBy []schema.QualifiedColumn
}

// Statement is any executable SQL statement.
type Statement interface {
	isStatement()
	SQL() string
}

func (*Select) isStatement() {}

// SQL renders the canonical form of the query.
func (s *Select) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.SQL())
	}
	b.WriteString(" FROM ")
	b.WriteString(s.Tables[0])
	for i := 1; i < len(s.Tables); i++ {
		j := s.Joins[i-1]
		b.WriteString(" JOIN ")
		b.WriteString(s.Tables[i])
		b.WriteString(" ON ")
		b.WriteString(j.Left.String())
		b.WriteString(" = ")
		b.WriteString(j.Right.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, c := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}

// HasAggregate reports whether any select item aggregates.
func (s *Select) HasAggregate() bool {
	for _, it := range s.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

// Insert is `INSERT INTO table VALUES (...)` or `INSERT INTO table (SELECT ...)`.
type Insert struct {
	Table  string
	Values []sqltypes.Value // used when Sub == nil
	Sub    *Select
}

func (*Insert) isStatement() {}

// SQL renders the insert statement.
func (s *Insert) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	if s.Sub != nil {
		b.WriteString(" (")
		b.WriteString(s.Sub.SQL())
		b.WriteString(")")
		return b.String()
	}
	b.WriteString(" VALUES (")
	for i, v := range s.Values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.SQL())
	}
	b.WriteString(")")
	return b.String()
}

// SetClause is one `col = value` assignment of an UPDATE.
type SetClause struct {
	Col   string // unqualified: UPDATE has a single-table scope
	Value sqltypes.Value
}

// Update is `UPDATE table SET col = v, ... WHERE pred`.
type Update struct {
	Table string
	Sets  []SetClause
	Where Predicate // nil when absent
}

func (*Update) isStatement() {}

// SQL renders the update statement.
func (s *Update) SQL() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i, sc := range s.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(sc.Col)
		b.WriteString(" = ")
		b.WriteString(sc.Value.SQL())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.SQL())
	}
	return b.String()
}

// Delete is `DELETE FROM table WHERE pred`.
type Delete struct {
	Table string
	Where Predicate // nil when absent
}

func (*Delete) isStatement() {}

// SQL renders the delete statement.
func (s *Delete) SQL() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.SQL())
	}
	return b.String()
}

// WalkPredicates calls fn on every predicate node of p in depth-first
// order, descending into AND/OR/NOT but not into subqueries.
func WalkPredicates(p Predicate, fn func(Predicate)) {
	if p == nil {
		return
	}
	fn(p)
	switch t := p.(type) {
	case *And:
		WalkPredicates(t.Left, fn)
		WalkPredicates(t.Right, fn)
	case *Or:
		WalkPredicates(t.Left, fn)
		WalkPredicates(t.Right, fn)
	case *Not:
		WalkPredicates(t.Inner, fn)
	}
}

// Subqueries returns every subquery directly referenced by the statement's
// predicates and HAVING clause (not recursing into nested levels).
func Subqueries(st Statement) []*Select {
	var out []*Select
	collect := func(p Predicate) {
		switch t := p.(type) {
		case *CompareSub:
			out = append(out, t.Sub)
		case *In:
			out = append(out, t.Sub)
		case *Exists:
			out = append(out, t.Sub)
		}
	}
	switch t := st.(type) {
	case *Select:
		WalkPredicates(t.Where, collect)
		if t.Having != nil && t.Having.Sub != nil {
			out = append(out, t.Having.Sub)
		}
	case *Insert:
		if t.Sub != nil {
			out = append(out, t.Sub)
		}
	case *Update:
		WalkPredicates(t.Where, collect)
	case *Delete:
		WalkPredicates(t.Where, collect)
	}
	return out
}

// CountPredicates returns the number of leaf predicates (comparisons,
// IN, EXISTS) in the statement's WHERE clause, counting subquery bodies
// recursively. Used by the Fig 10 distribution analysis.
func CountPredicates(st Statement) int {
	n := 0
	var walkSel func(s *Select)
	countLeaf := func(p Predicate) {
		switch p.(type) {
		case *Compare, *CompareSub, *In, *Exists, *Like:
			n++
		}
	}
	walkPred := func(p Predicate) {
		WalkPredicates(p, countLeaf)
	}
	walkSel = func(s *Select) {
		if s == nil {
			return
		}
		walkPred(s.Where)
		for _, sub := range Subqueries(s) {
			walkSel(sub)
		}
	}
	switch t := st.(type) {
	case *Select:
		walkSel(t)
	case *Update:
		walkPred(t.Where)
		for _, sub := range Subqueries(t) {
			walkSel(sub)
		}
	case *Delete:
		walkPred(t.Where)
		for _, sub := range Subqueries(t) {
			walkSel(sub)
		}
	case *Insert:
		walkSel(t.Sub)
	}
	return n
}

// ClonePredicate deep-copies a predicate tree. Subquery pointers are
// shared: subqueries are treated as immutable once built.
func ClonePredicate(p Predicate) Predicate {
	switch t := p.(type) {
	case nil:
		return nil
	case *Compare:
		c := *t
		return &c
	case *CompareSub:
		c := *t
		return &c
	case *Like:
		c := *t
		return &c
	case *In:
		c := *t
		return &c
	case *Exists:
		c := *t
		return &c
	case *And:
		return &And{Left: ClonePredicate(t.Left), Right: ClonePredicate(t.Right)}
	case *Or:
		return &Or{Left: ClonePredicate(t.Left), Right: ClonePredicate(t.Right)}
	case *Not:
		return &Not{Inner: ClonePredicate(t.Inner)}
	default:
		return p
	}
}

// CloneStatement deep-copies a statement's own structure (slices and
// predicate trees); nested subquery pointers are shared.
func CloneStatement(st Statement) Statement {
	switch t := st.(type) {
	case *Select:
		cp := *t
		cp.Tables = append([]string(nil), t.Tables...)
		cp.Joins = append([]JoinCond(nil), t.Joins...)
		cp.Items = append([]SelectItem(nil), t.Items...)
		cp.GroupBy = append([]schema.QualifiedColumn(nil), t.GroupBy...)
		cp.OrderBy = append([]schema.QualifiedColumn(nil), t.OrderBy...)
		cp.Where = ClonePredicate(t.Where)
		if t.Having != nil {
			h := *t.Having
			cp.Having = &h
		}
		return &cp
	case *Insert:
		cp := *t
		cp.Values = append([]sqltypes.Value(nil), t.Values...)
		return &cp
	case *Update:
		cp := *t
		cp.Sets = append([]SetClause(nil), t.Sets...)
		cp.Where = ClonePredicate(t.Where)
		return &cp
	case *Delete:
		cp := *t
		cp.Where = ClonePredicate(t.Where)
		return &cp
	default:
		return st
	}
}
