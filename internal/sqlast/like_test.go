package sqlast

import (
	"testing"

	"learnedsqlgen/internal/sqltypes"
)

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "hell", false},
		{"hello", "%ell%", true},
		{"hello", "%xyz%", false},
		{"hello", "hel%", true},
		{"hello", "%llo", true},
		{"hello", "h%o", true},
		{"hello", "h%z", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "", true},
		{"abcabc", "%a%b%c%", true},
		{"abcabc", "a%c", true},
		{"banana", "%an%an%", true},
		{"banana", "%an%an%an%", false},
		{"x", "%%", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.pat); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestLikeSQLAndCounting(t *testing.T) {
	p := &Like{Col: col("T", "name"), Pattern: "%ab%"}
	if got := p.SQL(); got != "T.name LIKE '%ab%'" {
		t.Errorf("Like SQL = %q", got)
	}
	q := &Select{
		Tables: []string{"T"},
		Items:  []SelectItem{{Col: col("T", "name")}},
		Where: &And{
			Left:  p,
			Right: &Compare{Col: col("T", "x"), Op: OpGt, Value: sqltypes.NewInt(1)},
		},
	}
	if got := CountPredicates(q); got != 2 {
		t.Errorf("CountPredicates with LIKE = %d, want 2", got)
	}
}
