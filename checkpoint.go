package learnedsqlgen

import (
	"learnedsqlgen/internal/rl"
)

// CheckpointStore manages a directory of rotated, crash-safe model
// checkpoints. Every Save writes a new sequence-numbered checkpoint
// atomically (staged, fsynced, renamed) and then updates a last-good
// manifest, so a crash — kill -9 included — at any instant leaves the
// store loadable. Load restores the newest checkpoint that passes the
// format's CRC validation, silently falling back to an older one when
// the newest is truncated or bit-flipped.
type CheckpointStore struct {
	store *rl.Store
}

// ErrNoCheckpoint is returned by CheckpointStore.Load when the store
// holds no loadable checkpoint (empty, or everything corrupt).
var ErrNoCheckpoint = rl.ErrNoCheckpoint

// OpenCheckpointStore opens (creating if needed) a checkpoint directory
// retaining the last keep checkpoints; keep <= 0 selects the default (3).
func OpenCheckpointStore(dir string, keep int) (*CheckpointStore, error) {
	s, err := rl.NewStore(dir, keep)
	if err != nil {
		return nil, err
	}
	return &CheckpointStore{store: s}, nil
}

// Dir returns the store's directory.
func (s *CheckpointStore) Dir() string { return s.store.Dir() }

// Save checkpoints the generator's current weights and returns the path
// written.
func (s *CheckpointStore) Save(g *Generator) (string, error) {
	s.bindFleet(g)
	return s.store.Save(g.trainer)
}

// Load restores the newest loadable checkpoint into the generator and
// returns the path it came from. Corrupt entries are skipped in favor of
// older good ones; ErrNoCheckpoint means nothing was loadable.
func (s *CheckpointStore) Load(g *Generator) (string, error) {
	s.bindFleet(g)
	return s.store.Load(g.trainer)
}

// bindFleet makes the store the durable refill source of a fleet-backed
// generator (Options.Shards > 1): after every all-reduce the fleet
// rotates a checkpoint here, and a crashed or quarantined shard restores
// from the newest loadable one. Single-trainer generators have no refill
// protocol; for them the store is only what Save/Load use explicitly.
func (s *CheckpointStore) bindFleet(g *Generator) {
	if fleet, ok := g.trainer.(*rl.ShardedTrainer); ok {
		fleet.SetStore(s.store)
	}
}
