package learnedsqlgen

import (
	"context"

	"learnedsqlgen/internal/oracle"
	"learnedsqlgen/internal/rl"
)

// ConformanceReport is the outcome of a SelfTest sweep: per-producer
// coverage counters plus the list of violations (empty on a healthy
// stack). See internal/oracle for the four checks behind it.
type ConformanceReport = oracle.Report

// ConformanceViolation is one typed conformance failure inside a
// ConformanceReport.
type ConformanceViolation = oracle.Violation

// SelfTest runs the conformance oracle over this database: four query
// producers (a raw FSM random walk, the SQLSmith-style random baseline,
// the template baseline, and an RL policy sampler) each emit
// queriesPerProducer statements, and every statement is pushed through
// the parse round-trip, FSM replay, differential cardinality
// (executor vs estimator), and metamorphic checks. The RL producer's
// determinism is re-verified with the actor prefix cache disabled, so the
// optimization layers are certified byte-identical on every sweep. When
// the DB was opened with Options.QuantizedInference, both RL samplers run
// the int8 inference path (byte-identity is certified within the
// quantized path; its drift from float64 is bounded separately by the
// nn quantization tolerance tests).
//
// The error reports harness-level failures only (a cancelled ctx);
// conformance failures land in the report, and report.Ok() is the
// verdict. SelfTest is read-only — DML statements under test run against
// throwaway clones.
func (db *DB) SelfTest(ctx context.Context, c Constraint, queriesPerProducer int) (*ConformanceReport, error) {
	mkTrainer := func(prefixCache int) func() (*rl.Trainer, error) {
		return func() (*rl.Trainer, error) {
			cfg := rl.FastConfig()
			cfg.Seed = db.seed
			cfg.Workers = db.workers
			cfg.PrefixCacheSize = prefixCache
			cfg.QuantizedInference = db.quantized
			return rl.NewTrainer(db.env, c, cfg), nil
		}
	}
	return oracle.Run(ctx, oracle.Config{
		Env: db.env,
		Producers: []oracle.Producer{
			oracle.FSMWalk(db.env, db.seed),
			oracle.RandomProducer(db.env, c, db.seed+1),
			oracle.TemplateProducer(db.env, c, 8, db.seed+2),
			oracle.TrainerProducer("rl", mkTrainer(db.prefixCacheSize), mkTrainer(-1)),
		},
		PerProducer: queriesPerProducer,
		Constraint:  &c,
		Seed:        db.seed,
	})
}
