package learnedsqlgen

import (
	"context"
	"fmt"

	"learnedsqlgen/internal/engine"
	"learnedsqlgen/internal/oracle"
	"learnedsqlgen/internal/rl"
)

// ConformanceReport is the outcome of a SelfTest sweep: per-producer
// coverage counters plus the list of violations (empty on a healthy
// stack). See internal/oracle for the four checks behind it.
type ConformanceReport = oracle.Report

// ConformanceViolation is one typed conformance failure inside a
// ConformanceReport.
type ConformanceViolation = oracle.Violation

// SelfTest runs the conformance oracle over this database: four query
// producers (a raw FSM random walk, the SQLSmith-style random baseline,
// the template baseline, and an RL policy sampler) each emit
// queriesPerProducer statements, and every statement is pushed through
// the parse round-trip, FSM replay, differential cardinality
// (executor vs estimator), and metamorphic checks. The RL producer's
// determinism is re-verified with the actor prefix cache disabled, so the
// optimization layers are certified byte-identical on every sweep. When
// the DB was opened with Options.QuantizedInference, both RL samplers run
// the int8 inference path (byte-identity is certified within the
// quantized path; its drift from float64 is bounded separately by the
// nn quantization tolerance tests). When the DB was opened with
// Options.Engine, the driver is additionally cross-checked against the
// in-tree executor on every statement (see CrossCheck).
//
// The error reports harness-level failures only (a cancelled ctx);
// conformance failures land in the report, and report.Ok() is the
// verdict. SelfTest is read-only — DML statements under test run against
// throwaway clones.
func (db *DB) SelfTest(ctx context.Context, c Constraint, queriesPerProducer int) (*ConformanceReport, error) {
	return db.selfTest(ctx, c, queriesPerProducer, db.engineUnderTest())
}

// CrossCheck is SelfTest plus the full cross-engine differential oracle:
// every produced statement is also rendered through each engine dialect
// (and must read back as the same statement), executed and estimated on
// the in-tree reference driver and the in-process database/sql engine
// over the opened data — plus the Options.Engine driver when one is
// configured. Engines sharing the data must agree on cardinality
// exactly; per-engine q-error distributions land in the report.
func (db *DB) CrossCheck(ctx context.Context, c Constraint, queriesPerProducer int) (*ConformanceReport, error) {
	engines, cleanup, err := db.crossEngines()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	return db.selfTest(ctx, c, queriesPerProducer, engines)
}

func (db *DB) selfTest(ctx context.Context, c Constraint, queriesPerProducer int, engines []oracle.EngineUnderTest) (*ConformanceReport, error) {
	mkTrainer := func(prefixCache int) func() (*rl.Trainer, error) {
		return func() (*rl.Trainer, error) {
			cfg := rl.FastConfig()
			cfg.Seed = db.seed
			cfg.Workers = db.workers
			cfg.PrefixCacheSize = prefixCache
			cfg.QuantizedInference = db.quantized
			return rl.NewTrainer(db.env, c, cfg), nil
		}
	}
	return oracle.Run(ctx, oracle.Config{
		Env: db.env,
		Producers: []oracle.Producer{
			oracle.FSMWalk(db.env, db.seed),
			oracle.RandomProducer(db.env, c, db.seed+1),
			oracle.TemplateProducer(db.env, c, 8, db.seed+2),
			oracle.TrainerProducer("rl", mkTrainer(db.prefixCacheSize), mkTrainer(-1)),
		},
		PerProducer: queriesPerProducer,
		Constraint:  &c,
		Seed:        db.seed,
		Engines:     engines,
	})
}

// engineUnderTest wraps the configured driver (when any) for the
// cross-engine oracle, looking its dialect up in the registry.
func (db *DB) engineUnderTest() []oracle.EngineUnderTest {
	if db.driver == nil {
		return nil
	}
	caps := db.driver.Capabilities()
	e := oracle.EngineUnderTest{
		Name: caps.Engine,
		// Demand exact agreement only when the driver provably wraps this
		// DB's own storage — a DSN-opened engine may hold different data.
		ExactCardinality: db.driverShared,
	}
	if d, ok := engine.DialectByName(caps.Dialect); ok {
		e.Dialect = d.Render
		e.Reparse = d.Reparse
	}
	if caps.Estimate {
		e.Est = db.driver
	}
	if caps.Execute {
		e.Exec = db.driver
	}
	return []oracle.EngineUnderTest{e}
}

// crossEngines assembles the CrossCheck engine set: the configured
// driver (if any) plus the two in-tree drivers over the opened data,
// skipping in-tree entries the configured driver already covers.
func (db *DB) crossEngines() ([]oracle.EngineUnderTest, func(), error) {
	engines := db.engineUnderTest()
	have := map[string]bool{}
	for _, e := range engines {
		have[e.Name] = true
	}
	cleanup := func() {}

	if !have["reference"] {
		ref := engine.NewReference(db.raw)
		engines = append(engines, oracle.EngineUnderTest{
			Name: "reference", Est: ref, Exec: ref, ExactCardinality: true,
		})
	}
	if !have["inprocess"] {
		handle := fmt.Sprintf("cross-%p", db.raw)
		engine.RegisterTestDatabase(handle, db.raw)
		inproc, err := engine.Open("inprocess", "handle="+handle)
		if err != nil {
			return nil, nil, err
		}
		cleanup = func() { inproc.Close() }
		nat, _ := engine.DialectByName("native")
		engines = append(engines, oracle.EngineUnderTest{
			Name: "inprocess", Dialect: nat.Render, Reparse: nat.Reparse,
			Est: inproc, Exec: inproc, ExactCardinality: true,
		})
	}
	return engines, cleanup, nil
}
