package learnedsqlgen

import (
	"fmt"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/storage"
)

// ColType is a column datatype for custom schemas.
type ColType uint8

// Supported column types.
const (
	Int ColType = iota
	Float
	String
)

func (t ColType) kind() sqltypes.Kind {
	switch t {
	case Int:
		return sqltypes.KindInt
	case Float:
		return sqltypes.KindFloat
	default:
		return sqltypes.KindString
	}
}

// ColumnDef declares one column of a custom table.
type ColumnDef struct {
	Name string
	Type ColType
	// Categorical marks a string column with a small closed domain; its
	// full domain enters the token vocabulary.
	Categorical bool
	// PrimaryKey marks the table key (at most one per table).
	PrimaryKey bool
}

// TableDef declares one custom table.
type TableDef struct {
	Name    string
	Columns []ColumnDef
}

// ForeignKeyDef declares a PK–FK join edge; generated queries join only
// along these edges.
type ForeignKeyDef struct {
	FromTable, FromColumn string
	ToTable, ToColumn     string
}

// SchemaDef declares a full custom schema.
type SchemaDef struct {
	Name        string
	Tables      []TableDef
	ForeignKeys []ForeignKeyDef
}

// OpenCustom opens a user-defined database. rows maps table names to row
// literals; each cell must be an int/int64, float64, or string matching
// the column type.
func OpenCustom(def SchemaDef, rows map[string][][]any, opt *Options) (*DB, error) {
	b := schema.NewBuilder(def.Name)
	for _, t := range def.Tables {
		cols := make([]schema.Column, 0, len(t.Columns))
		for _, c := range t.Columns {
			cols = append(cols, schema.Column{
				Name:        c.Name,
				Kind:        c.Type.kind(),
				Categorical: c.Categorical,
				PrimaryKey:  c.PrimaryKey,
			})
		}
		b.Table(t.Name, "", cols...)
	}
	for _, fk := range def.ForeignKeys {
		b.ForeignKey(fk.FromTable, fk.FromColumn, fk.ToTable, fk.ToColumn)
	}
	sch, err := b.Build()
	if err != nil {
		return nil, err
	}
	raw := storage.NewDatabase(sch)
	for tableName, tableRows := range rows {
		tab := raw.Table(tableName)
		if tab == nil {
			return nil, fmt.Errorf("learnedsqlgen: rows for unknown table %q", tableName)
		}
		for ri, r := range tableRows {
			row := make(storage.Row, len(r))
			for ci, cell := range r {
				v, err := toValue(cell)
				if err != nil {
					return nil, fmt.Errorf("learnedsqlgen: %s row %d col %d: %w", tableName, ri, ci, err)
				}
				want := tab.Meta.Columns[ci].Kind
				if !v.IsNull() && v.Kind() != want {
					return nil, fmt.Errorf("learnedsqlgen: %s row %d col %s: %v value for %v column",
						tableName, ri, tab.Meta.Columns[ci].Name, v.Kind(), want)
				}
				row[ci] = v
			}
			if err := tab.Append(row); err != nil {
				return nil, err
			}
		}
	}
	name := def.Name
	if name == "" {
		name = "custom"
	}
	return openStorage(name, raw, opt)
}

func toValue(cell any) (sqltypes.Value, error) {
	switch v := cell.(type) {
	case nil:
		return sqltypes.Null, nil
	case int:
		return sqltypes.NewInt(int64(v)), nil
	case int64:
		return sqltypes.NewInt(v), nil
	case float64:
		return sqltypes.NewFloat(v), nil
	case string:
		return sqltypes.NewString(v), nil
	default:
		return sqltypes.Null, fmt.Errorf("unsupported cell type %T", cell)
	}
}
