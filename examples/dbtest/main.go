// Database testing with the extended grammar (§5 Cases 4–6, §7.6): define
// a custom schema, then build a mixed SELECT / INSERT / UPDATE / DELETE
// workload targeting a cost band, training one generator per statement
// family exactly like the paper's Figure 11 methodology. Every statement
// is guaranteed valid by the FSM; we prove it by executing each one
// against a snapshot.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"learnedsqlgen"
)

func main() {
	def, rows := trackerSchema()

	// One grammar per statement family keeps the workload mix balanced
	// (a single DML-enabled policy converges to whichever family hits the
	// cost band most easily).
	grammars := map[string]*learnedsqlgen.GrammarOptions{
		"select": {MaxJoins: 2, MaxSelectItems: 3, MaxPredicates: 4, MaxNestDepth: 1,
			AllowAggregates: true, AllowOrderBy: true, AllowLike: true},
		"insert": {MaxPredicates: 2, AllowInsert: true, DisableSelect: true},
		"update": {MaxPredicates: 3, AllowUpdate: true, DisableSelect: true},
		"delete": {MaxPredicates: 3, MaxNestDepth: 1, AllowDelete: true, DisableSelect: true},
	}

	constraint := learnedsqlgen.RangeConstraint(learnedsqlgen.Cost, 500, 5000)
	var workload []learnedsqlgen.Generated
	var verifier *learnedsqlgen.DB

	// One deadline covers the whole build: train + collect for all four
	// families. If it expires, whatever was collected so far is verified
	// and profiled below instead of hanging the test run.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()

	for _, kind := range []string{"select", "insert", "update", "delete"} {
		db, err := learnedsqlgen.OpenCustom(def, rows, &learnedsqlgen.Options{
			SampleValues: 40,
			Seed:         5,
			Grammar:      grammars[kind],
		})
		if err != nil {
			log.Fatal(err)
		}
		if verifier == nil {
			verifier = db
		}
		gen := db.NewGenerator(constraint)
		if _, err := gen.TrainAdaptiveContext(ctx, 80, 25); err != nil {
			fmt.Printf("%-6s: training stopped early (%v)\n", kind, err)
			break
		}
		// DML grammars still emit SELECTs (the FROM branch stays legal);
		// filter to the family this generator was trained for.
		picked := 0
		for attempts := 0; picked < 15 && attempts < 600; attempts++ {
			batch, err := gen.GenerateContext(ctx, 1)
			if err != nil {
				break
			}
			q := batch[0]
			if kindOf(q.SQL) != kind || !q.Satisfied {
				continue
			}
			workload = append(workload, q)
			picked++
		}
		fmt.Printf("%-6s: %d satisfied statements collected\n", kind, picked)
	}

	// Every generated statement must execute (against a snapshot).
	for _, q := range workload {
		if _, err := verifier.Execute(q.SQL); err != nil {
			log.Fatalf("generated statement failed to execute: %q: %v", q.SQL, err)
		}
	}
	fmt.Printf("\nexecuted all %d statements without error\n", len(workload))

	profile := learnedsqlgen.AnalyzeWorkload(workload)
	fmt.Printf("workload mix: %v\n", profile.ByType)
	fmt.Printf("diversity: %d distinct skeletons (entropy %.2f nats)\n",
		profile.DistinctSkeletons, profile.SkeletonEntropy)

	fmt.Println("\nsample test statements:")
	shown := map[string]bool{}
	for _, q := range workload {
		k := kindOf(q.SQL)
		if shown[k] {
			continue
		}
		shown[k] = true
		fmt.Printf("-- estimated cost %.0f\n%s;\n\n", q.Measured, q.SQL)
	}
}

// kindOf classifies a statement by its leading keyword.
func kindOf(sql string) string {
	switch sql[0] {
	case 'S':
		return "select"
	case 'I':
		return "insert"
	case 'U':
		return "update"
	default:
		return "delete"
	}
}

// trackerSchema builds a small issue-tracker schema with seeded rows.
func trackerSchema() (learnedsqlgen.SchemaDef, map[string][][]any) {
	def := learnedsqlgen.SchemaDef{
		Name: "tracker",
		Tables: []learnedsqlgen.TableDef{
			{Name: "project", Columns: []learnedsqlgen.ColumnDef{
				{Name: "id", Type: learnedsqlgen.Int, PrimaryKey: true},
				{Name: "name", Type: learnedsqlgen.String},
				{Name: "stars", Type: learnedsqlgen.Int},
			}},
			{Name: "dev", Columns: []learnedsqlgen.ColumnDef{
				{Name: "id", Type: learnedsqlgen.Int, PrimaryKey: true},
				{Name: "name", Type: learnedsqlgen.String},
				{Name: "level", Type: learnedsqlgen.String, Categorical: true},
			}},
			{Name: "issue", Columns: []learnedsqlgen.ColumnDef{
				{Name: "id", Type: learnedsqlgen.Int, PrimaryKey: true},
				{Name: "project_id", Type: learnedsqlgen.Int},
				{Name: "assignee", Type: learnedsqlgen.Int},
				{Name: "severity", Type: learnedsqlgen.String, Categorical: true},
				{Name: "hours", Type: learnedsqlgen.Float},
			}},
		},
		ForeignKeys: []learnedsqlgen.ForeignKeyDef{
			{FromTable: "issue", FromColumn: "project_id", ToTable: "project", ToColumn: "id"},
			{FromTable: "issue", FromColumn: "assignee", ToTable: "dev", ToColumn: "id"},
		},
	}

	rng := rand.New(rand.NewSource(42))
	rows := map[string][][]any{}
	levels := []string{"junior", "senior", "staff"}
	sev := []string{"low", "medium", "high", "critical"}
	for i := 0; i < 40; i++ {
		rows["project"] = append(rows["project"],
			[]any{i, fmt.Sprintf("proj%d", i), rng.Intn(5000)})
	}
	for i := 0; i < 120; i++ {
		rows["dev"] = append(rows["dev"],
			[]any{i, fmt.Sprintf("dev%d", i), levels[rng.Intn(len(levels))]})
	}
	for i := 0; i < 2500; i++ {
		rows["issue"] = append(rows["issue"], []any{
			i, rng.Intn(40), rng.Intn(120), sev[rng.Intn(len(sev))],
			float64(rng.Intn(400)) / 4,
		})
	}
	return def, rows
}
