// Training-set generation for a learned cardinality estimator — another
// motivating scenario from the paper's introduction: a learned estimator
// needs many (query, cardinality) pairs spread across magnitudes, which
// constraint-aware generation produces on demand. Real query logs are
// usually unavailable for privacy reasons.
//
// The meta-critic (§6) shines here: one pre-training pass over the
// cardinality domain, then cheap adaptation per magnitude band.
package main

import (
	"context"
	"fmt"
	"log"

	"learnedsqlgen"
)

func main() {
	// OnEpoch streams pre-training progress: one line per round, and a
	// non-nil return would abort the run early.
	rounds := 0
	db, err := learnedsqlgen.OpenBenchmark("xuetang", 1.0, &learnedsqlgen.Options{
		SampleValues: 50,
		Seed:         7,
		OnEpoch: func(s learnedsqlgen.EpochStats) error {
			rounds++
			fmt.Printf("  round %d: avg reward %.3f, satisfied %.0f%%\n",
				rounds, s.AvgReward, 100*s.SatisfiedRate)
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pre-train one meta-critic over the cardinality domain [0, 1000],
	// split into 5 sub-range tasks.
	domain := learnedsqlgen.MetaDomain{
		Metric: learnedsqlgen.Cardinality,
		Lo:     0, Hi: 1000, K: 5,
	}
	metaGen := db.NewMetaGenerator(domain)
	fmt.Println("pre-training the meta-critic over", domain.K, "tasks ...")
	if _, err := metaGen.PretrainContext(context.Background(), 20, 25); err != nil {
		log.Fatal(err)
	}

	// Adapt per band and emit labelled pairs.
	bands := [][2]float64{{10, 50}, {150, 250}, {350, 450}, {600, 800}}
	fmt.Println("label\tsql")
	total := 0
	for _, band := range bands {
		c := learnedsqlgen.RangeConstraint(learnedsqlgen.Cardinality, band[0], band[1])
		adapted := metaGen.Adapt(c)
		adapted.Train(40, 25)
		pairs, _ := adapted.GenerateSatisfied(5, 1500)
		for _, p := range pairs {
			fmt.Printf("%.0f\t%s\n", p.Measured, p.SQL)
			total++
		}
	}
	fmt.Printf("\nemitted %d labelled (cardinality, SQL) training pairs\n", total)
}
