// Slow-query generation for optimizer diagnosis: the paper's motivating
// scenario of feeding a database optimizer with expensive queries. We ask
// for queries whose estimated cost falls in a high band, then profile what
// makes them slow (join depth, scanned rows).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"learnedsqlgen"
)

func main() {
	// TrainBudget caps every training call on this DB's generators at 15
	// wall-clock minutes — handy in a diagnosis pipeline where a slow
	// convergence must not stall the whole run.
	db, err := learnedsqlgen.OpenBenchmark("job", 1.0, &learnedsqlgen.Options{
		SampleValues: 50,
		Seed:         3,
		TrainBudget:  15 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	// "Slow" on the micro-scale IMDB data ≈ cost above 50 000 units
	// (roughly the most expensive percentile of random queries).
	constraint := learnedsqlgen.RangeConstraint(learnedsqlgen.Cost, 50000, 500000)
	gen := db.NewGenerator(constraint)

	fmt.Printf("training for %s ...\n", constraint)
	trace, err := gen.TrainAdaptiveContext(context.Background(), 300, 25)
	if errors.Is(err, learnedsqlgen.ErrBudgetExceeded) {
		fmt.Println("budget spent; generating with the policy trained so far")
	} else if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d epochs; final satisfied rate %.0f%%\n",
		len(trace), 100*trace[len(trace)-1].SatisfiedRate)

	slow, attempts := gen.GenerateSatisfied(15, 3000)
	fmt.Printf("%d slow queries in %d attempts\n\n", len(slow), attempts)

	// Profile the slow set: how deep are the join chains?
	joinDepth := map[int]int{}
	for _, q := range slow {
		joinDepth[strings.Count(q.SQL, " JOIN ")]++
	}
	depths := make([]int, 0, len(joinDepth))
	for d := range joinDepth {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	fmt.Println("join-depth profile of the slow workload:")
	for _, d := range depths {
		fmt.Printf("  %d joins: %d queries\n", d, joinDepth[d])
	}

	// Show the three most expensive, with their estimated plans.
	sort.Slice(slow, func(i, j int) bool { return slow[i].Measured > slow[j].Measured })
	fmt.Println("\nmost expensive generated queries:")
	for i := 0; i < 3 && i < len(slow); i++ {
		fmt.Printf("-- estimated cost %.0f\n%s;\n", slow[i].Measured, slow[i].SQL)
		if plan, err := db.Explain(slow[i].SQL); err == nil {
			fmt.Println(plan)
		}
	}
}
