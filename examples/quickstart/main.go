// Quickstart: open a benchmark database, state a cardinality constraint,
// train, and print satisfied SQL queries — the minimal LearnedSQLGen loop.
package main

import (
	"fmt"
	"log"

	"learnedsqlgen"
)

func main() {
	// Open the synthetic TPC-H micro dataset (8 tables, ~25k rows).
	db, err := learnedsqlgen.OpenBenchmark("tpch", 1.0, &learnedsqlgen.Options{
		SampleValues: 50,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tables:", db.Tables())

	// We want queries returning between 100 and 400 rows.
	constraint := learnedsqlgen.RangeConstraint(learnedsqlgen.Cardinality, 100, 400)
	gen := db.NewGenerator(constraint)

	fmt.Printf("training for %s ...\n", constraint)
	trace := gen.TrainAdaptive(300, 25)
	fmt.Printf("trained %d epochs; final satisfied rate %.0f%%\n",
		len(trace), 100*trace[len(trace)-1].SatisfiedRate)

	queries, attempts := gen.GenerateSatisfied(10, 2000)
	fmt.Printf("%d satisfied queries (%d attempts):\n\n", len(queries), attempts)
	for _, q := range queries {
		fmt.Printf("-- estimated cardinality %.0f\n%s;\n\n", q.Measured, q.SQL)
	}

	// Cross-check one of them against the real executor.
	if len(queries) > 0 {
		res, err := db.Execute(queries[0].SQL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("executor says the first query returns %d rows (estimate was %.0f)\n",
			res.Cardinality, queries[0].Measured)
	}
}
