// Quickstart: open a benchmark database, state a cardinality constraint,
// train, and print satisfied SQL queries — the minimal LearnedSQLGen loop.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"learnedsqlgen"
)

func main() {
	// Open the synthetic TPC-H micro dataset (8 tables, ~25k rows).
	db, err := learnedsqlgen.OpenBenchmark("tpch", 1.0, &learnedsqlgen.Options{
		SampleValues: 50,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tables:", db.Tables())

	// We want queries returning between 100 and 400 rows.
	constraint := learnedsqlgen.RangeConstraint(learnedsqlgen.Cardinality, 100, 400)
	gen := db.NewGenerator(constraint)

	// Train under a deadline: if adaptive training has not converged
	// within 10 minutes, it stops at the next episode boundary and we
	// generate with the policy learned so far (the error says why it
	// stopped; a nil error means it converged or hit maxEpochs first).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	fmt.Printf("training for %s ...\n", constraint)
	trace, err := gen.TrainAdaptiveContext(ctx, 300, 25)
	if err != nil {
		fmt.Printf("training stopped early: %v\n", err)
	}
	fmt.Printf("trained %d epochs; final satisfied rate %.0f%%\n",
		len(trace), 100*trace[len(trace)-1].SatisfiedRate)

	queries, attempts := gen.GenerateSatisfied(10, 2000)
	fmt.Printf("%d satisfied queries (%d attempts):\n\n", len(queries), attempts)
	for _, q := range queries {
		fmt.Printf("-- estimated cardinality %.0f\n%s;\n\n", q.Measured, q.SQL)
	}

	// Cross-check one of them against the real executor.
	if len(queries) > 0 {
		res, err := db.Execute(queries[0].SQL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("executor says the first query returns %d rows (estimate was %.0f)\n",
			res.Cardinality, queries[0].Measured)
	}
}
