module learnedsqlgen

go 1.23
