module learnedsqlgen

go 1.22
