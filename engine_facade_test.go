package learnedsqlgen

import (
	"context"
	"strings"
	"testing"
)

// openEngineDB opens the xuetang micro benchmark with rewards routed
// through the named engine driver.
func openEngineDB(t *testing.T, opt *Options) *DB {
	t.Helper()
	db, err := OpenBenchmark("xuetang", 0.05, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestEngineRewardsDriverSourced is the facade acceptance check: with
// Options.Engine set, a trainer must reach satisfied queries with every
// reward measurement sourced from the driver — proven by the driver's
// own call counters — while the resilience layer's counters surface in
// TrainStats.
func TestEngineRewardsDriverSourced(t *testing.T) {
	for _, name := range []string{"reference", "inprocess"} {
		t.Run(name, func(t *testing.T) {
			db := openEngineDB(t, &Options{
				SampleValues: 10,
				Seed:         1,
				Engine:       name,
				Resilience:   &ResilienceOptions{},
				FaultInjection: &FaultInjectionOptions{
					Seed:      5,
					ErrorRate: 0.02,
				},
			})
			es, ok := db.EngineStats()
			if !ok || es.Engine != name {
				t.Fatalf("EngineStats = %+v, %v; want engine %q", es, ok, name)
			}

			c := RangeConstraint(Cardinality, 1, 1000)
			gen := db.NewGenerator(c)
			gen.TrainAdaptive(10, 10)
			sat, _ := gen.GenerateSatisfied(5, 500)
			if len(sat) < 5 {
				t.Fatalf("only %d/5 satisfied queries through engine %s", len(sat), name)
			}
			for _, q := range sat {
				if !q.Satisfied {
					t.Fatal("unsatisfied query returned as satisfied")
				}
			}

			es, _ = db.EngineStats()
			if es.Estimates == 0 {
				t.Fatalf("engine %s: no estimate ever reached the driver — rewards were not driver-sourced (%+v)", name, es)
			}
			st := gen.Stats()
			if st.Retries == 0 {
				t.Errorf("engine %s: injected faults never surfaced as retries in TrainStats", name)
			}
		})
	}
}

// TestEngineTrueExecutionThroughDriver routes true-execution rewards
// through the driver: the Executes counter must advance.
func TestEngineTrueExecutionThroughDriver(t *testing.T) {
	db := openEngineDB(t, &Options{
		SampleValues:         10,
		Seed:                 1,
		Engine:               "reference",
		TrueExecutionRewards: true,
	})
	gen := db.NewGenerator(RangeConstraint(Cardinality, 1, 1000))
	gen.Train(1, 5)
	es, ok := db.EngineStats()
	if !ok || es.Executes == 0 {
		t.Fatalf("true-execution rewards bypassed the driver: %+v, %v", es, ok)
	}
}

// TestEngineUnknownFails ensures a bad engine or DSN fails at open, not
// at the first reward.
func TestEngineUnknownFails(t *testing.T) {
	if _, err := OpenBenchmark("xuetang", 0.05, &Options{Engine: "nope"}); err == nil {
		t.Error("unknown engine must fail OpenBenchmark")
	}
	if _, err := OpenBenchmark("xuetang", 0.05, &Options{Engine: "inprocess", DSN: "handle=missing"}); err == nil {
		t.Error("bad DSN must fail OpenBenchmark")
	}
}

// TestSelfTestCrossChecksConfiguredEngine verifies SelfTest gains the
// cross-engine oracle when a driver is configured: the report carries
// the driver's per-engine distributions and stays clean.
func TestSelfTestCrossChecksConfiguredEngine(t *testing.T) {
	db := openEngineDB(t, &Options{SampleValues: 10, Seed: 1, Engine: "inprocess"})
	rep, err := db.SelfTest(context.Background(), RangeConstraint(Cardinality, 1, 1000), 20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violations with a shared-data driver:\n%s", rep)
	}
	for _, pr := range rep.Producers {
		if len(pr.Engines) != 1 || pr.Engines[0].Engine != "inprocess" {
			t.Fatalf("%s: engine reports %+v, want the configured driver", pr.Name, pr.Engines)
		}
		if pr.Engines[0].Executed == 0 || pr.Engines[0].Estimated == 0 {
			t.Fatalf("%s: driver not exercised: %+v", pr.Name, pr.Engines[0])
		}
	}
	if !strings.Contains(rep.String(), "engine inprocess") {
		t.Errorf("report does not surface the engine:\n%s", rep)
	}
}

// TestCrossCheckFacade runs the full CrossCheck sweep — configured
// driver plus both in-tree engines — and demands a clean report with
// per-engine coverage.
func TestCrossCheckFacade(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 10
	}
	db := openEngineDB(t, &Options{SampleValues: 10, Seed: 1})
	rep, err := db.CrossCheck(context.Background(), RangeConstraint(Cardinality, 1, 1000), n)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("cross-check violations:\n%s", rep)
	}
	for _, pr := range rep.Producers {
		if len(pr.Engines) != 2 {
			t.Fatalf("%s: %d engine reports, want reference + inprocess", pr.Name, len(pr.Engines))
		}
		for _, e := range pr.Engines {
			if e.Executed == 0 || e.TruthQ.Max != 1 {
				t.Fatalf("%s/%s: shared-data engine disagreed or idle: %+v", pr.Name, e.Engine, e)
			}
		}
	}
}
