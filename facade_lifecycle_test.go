package learnedsqlgen

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"learnedsqlgen/internal/engine"
	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/sqlast"
)

// trackedDriver wraps an engine driver and records the exact race
// DB.Close's drain exists to prevent: an estimate running against (or
// arriving after) a closed connection.
type trackedDriver struct {
	engine.Driver
	estCalls         atomic.Int64
	estInFlight      atomic.Int32
	closed           atomic.Bool
	estAfterClose    atomic.Bool
	closeWhileActive atomic.Bool
}

func (d *trackedDriver) EstimateContext(ctx context.Context, st sqlast.Statement) (estimator.Estimate, error) {
	d.estInFlight.Add(1)
	defer d.estInFlight.Add(-1)
	d.estCalls.Add(1)
	if d.closed.Load() {
		d.estAfterClose.Store(true)
	}
	return d.Driver.EstimateContext(ctx, st)
}

func (d *trackedDriver) Close() error {
	if d.estInFlight.Load() > 0 {
		d.closeWhileActive.Store(true)
	}
	d.closed.Store(true)
	return d.Driver.Close()
}

var lastTracked atomic.Pointer[trackedDriver]

func init() {
	engine.Register("tracked", func(dsn string) (engine.Driver, error) {
		inner, err := engine.Open("inprocess", dsn)
		if err != nil {
			return nil, err
		}
		d := &trackedDriver{Driver: inner}
		lastTracked.Store(d)
		return d, nil
	})
}

// TestCloseDrainsInFlightStreams is the lifecycle regression check:
// Close while a GenerateSatisfiedContext stream is running must cancel
// the stream (cause ErrDBClosed), wait for it to drain, and only then
// close the engine driver — never the reverse order.
func TestCloseDrainsInFlightStreams(t *testing.T) {
	db, err := OpenBenchmark("xuetang", 0.05, &Options{
		SampleValues: 10,
		Seed:         1,
		Engine:       "tracked",
		DSN:          "dataset=xuetang scale=0.05 seed=1",
	})
	if err != nil {
		t.Fatal(err)
	}
	d := lastTracked.Load()
	if d == nil {
		t.Fatal("tracked driver factory never ran")
	}

	gen := db.NewGenerator(RangeConstraint(Cardinality, 1, 1000))
	gen.Train(1, 4)

	// An unreachable constraint keeps the stream estimating until Close
	// cancels it: nothing satisfies cardinality in [1e17, 1e18].
	long := db.NewGenerator(RangeConstraint(Cardinality, 1e17, 1e18))
	streamErr := make(chan error, 1)
	base := d.estCalls.Load()
	go func() {
		_, _, err := long.GenerateSatisfiedContext(context.Background(), 1, 1<<30)
		streamErr <- err
	}()

	deadline := time.Now().Add(20 * time.Second)
	for d.estCalls.Load() == base {
		if time.Now().After(deadline) {
			t.Fatal("stream never reached the driver")
		}
		time.Sleep(time.Millisecond)
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-streamErr:
		if !errors.Is(err, ErrDBClosed) {
			t.Fatalf("in-flight stream ended with %v; want cause ErrDBClosed", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("stream did not end after Close")
	}
	if d.closeWhileActive.Load() {
		t.Fatal("driver closed while an estimate was in flight — Close did not drain first")
	}
	if d.estAfterClose.Load() {
		t.Fatal("estimate reached the driver after Close — stream outlived the drain")
	}

	if _, _, err := gen.GenerateSatisfiedContext(context.Background(), 1, 10); !errors.Is(err, ErrDBClosed) {
		t.Fatalf("generation after Close = %v; want ErrDBClosed", err)
	}
	if _, err := gen.TrainContext(context.Background(), 1, 4); !errors.Is(err, ErrDBClosed) {
		t.Fatalf("training after Close = %v; want ErrDBClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// refusingDriver is a database/sql driver whose every connection attempt
// fails — a stand-in for a down or misaddressed external engine.
type refusingDriver struct{}

func (refusingDriver) Open(string) (driver.Conn, error) {
	return nil, errors.New("connection refused")
}

func init() { sql.Register("refusing", refusingDriver{}) }

// TestUnreachableEngineFailsAtOpen pins the open-time reachability
// probe: an -engine/-dsn pointing at a dead server must fail
// OpenBenchmark with one clean error (which cmd/sqlgen prints and exits
// non-zero on), never reach training, and never panic.
func TestUnreachableEngineFailsAtOpen(t *testing.T) {
	_, err := OpenBenchmark("xuetang", 0.05, &Options{
		SampleValues: 10,
		Seed:         1,
		Engine:       "sql",
		DSN:          "driver=refusing dialect=postgres dsn=nowhere",
	})
	if err == nil {
		t.Fatal("unreachable engine must fail OpenBenchmark")
	}
	if !strings.Contains(err.Error(), "unreachable") || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("error does not name the unreachable engine: %v", err)
	}
}
