package learnedsqlgen

import (
	"os"

	"learnedsqlgen/internal/workload"
)

// WorkloadProfile summarizes the structure and diversity of a generated
// workload (the Figure 10 analysis: join counts, nesting, aggregation,
// statement types, plus skeleton-diversity measures).
type WorkloadProfile = workload.Profile

// AnalyzeWorkload profiles a set of generated queries.
func AnalyzeWorkload(queries []Generated) *WorkloadProfile {
	return workload.Analyze(queries)
}

// WriteWorkloadFile saves generated queries as executable SQL, one
// statement per line, each preceded by a comment recording the measured
// metric value.
func WriteWorkloadFile(path string, queries []Generated, m Metric) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := workload.WriteSQL(f, queries, m); err != nil {
		return err
	}
	return f.Sync()
}

// ReadWorkloadFile loads a SQL workload file (as written by
// WriteWorkloadFile, or any one-statement-per-line SQL file) and
// re-measures each statement against this database with the given metric.
func (db *DB) ReadWorkloadFile(path string, m Metric) ([]Generated, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	stmts, err := workload.ReadSQL(f)
	if err != nil {
		return nil, err
	}
	out := make([]Generated, 0, len(stmts))
	for _, st := range stmts {
		g := Generated{Statement: st, SQL: st.SQL()}
		if v, err := db.env.Measure(st, m); err == nil {
			g.Measured = v
		}
		out = append(out, g)
	}
	return out, nil
}
