package learnedsqlgen

import (
	"context"
	"io"
	"os"

	"learnedsqlgen/internal/durable"
	"learnedsqlgen/internal/workload"
)

// WorkloadProfile summarizes the structure and diversity of a generated
// workload (the Figure 10 analysis: join counts, nesting, aggregation,
// statement types, plus skeleton-diversity measures).
type WorkloadProfile = workload.Profile

// AnalyzeWorkload profiles a set of generated queries.
func AnalyzeWorkload(queries []Generated) *WorkloadProfile {
	return workload.Analyze(queries)
}

// WriteWorkloadFile saves generated queries as executable SQL, one
// statement per line, each preceded by a comment recording the measured
// metric value. The write is durable and atomic: the content is staged
// in a temporary file and renamed over path, so an interrupted run never
// leaves a truncated workload behind.
func WriteWorkloadFile(path string, queries []Generated, m Metric) error {
	return durable.WriteFile(path, func(w io.Writer) error {
		return workload.WriteSQL(w, queries, m)
	})
}

// ReadWorkloadFile loads a SQL workload file (as written by
// WriteWorkloadFile, or any one-statement-per-line SQL file) and
// re-measures each statement against this database with the given metric.
func (db *DB) ReadWorkloadFile(path string, m Metric) ([]Generated, error) {
	return db.ReadWorkloadFileContext(context.Background(), path, m)
}

// ReadWorkloadFileContext is ReadWorkloadFile with cancellation: a done
// ctx stops between statements and returns the statements measured so
// far together with ctx's error. Statements the environment refuses to
// measure (unsupported shapes, unknown objects) keep Measured == 0, as in
// ReadWorkloadFile; only cancellation aborts the loop.
func (db *DB) ReadWorkloadFileContext(ctx context.Context, path string, m Metric) ([]Generated, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	stmts, err := workload.ReadSQL(f)
	if err != nil {
		return nil, err
	}
	out := make([]Generated, 0, len(stmts))
	for _, st := range stmts {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		g := Generated{Statement: st, SQL: st.SQL()}
		if v, err := db.env.MeasureContext(ctx, st, m); err == nil {
			g.Measured = v
		}
		out = append(out, g)
	}
	return out, nil
}
