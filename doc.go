// Package learnedsqlgen is a from-scratch Go implementation of
// LearnedSQLGen (Zhang, Chai, Zhou, Li — SIGMOD 2022): constraint-aware
// SQL generation with reinforcement learning.
//
// Given a database and a cardinality or cost constraint (a point target or
// a range), a Generator trains an actor–critic policy over a finite-state
// machine of the SQL grammar, then samples syntactically and semantically
// valid queries whose estimated cardinality/cost satisfies the constraint:
//
//	db, _ := learnedsqlgen.OpenBenchmark("tpch", 1.0, nil)
//	gen := db.NewGenerator(learnedsqlgen.RangeConstraint(learnedsqlgen.Cardinality, 100, 400))
//	gen.Train(250, 25)
//	for _, q := range gen.MustGenerateSatisfied(10, 4000) {
//	    fmt.Println(q.SQL)
//	}
//
// The package bundles everything the paper's system depends on, all
// stdlib-only: an in-memory relational engine with executor and
// statistics-based cardinality/cost estimator, three benchmark dataset
// generators (TPC-H, JOB, XueTang schemas at micro scale), an LSTM
// actor–critic trained with potential-shaped execution feedback, a
// meta-critic for fast adaptation to new constraints (§6), and the
// SQLSmith-style and template-based baselines used in the paper's
// evaluation. See DESIGN.md for the architecture and EXPERIMENTS.md for
// the reproduced figures.
package learnedsqlgen
