// Package learnedsqlgen is a from-scratch Go implementation of
// LearnedSQLGen (Zhang, Chai, Zhou, Li — SIGMOD 2022): constraint-aware
// SQL generation with reinforcement learning.
//
// Given a database and a cardinality or cost constraint (a point target or
// a range), a Generator trains an actor–critic policy over a finite-state
// machine of the SQL grammar, then samples syntactically and semantically
// valid queries whose estimated cardinality/cost satisfies the constraint:
//
//	db, _ := learnedsqlgen.OpenBenchmark("tpch", 1.0, nil)
//	gen := db.NewGenerator(learnedsqlgen.RangeConstraint(learnedsqlgen.Cardinality, 100, 400))
//	gen.Train(250, 25)
//	for _, q := range gen.MustGenerateSatisfied(10, 4000) {
//	    fmt.Println(q.SQL)
//	}
//
// The package bundles everything the paper's system depends on, all
// stdlib-only: an in-memory relational engine with executor and
// statistics-based cardinality/cost estimator, three benchmark dataset
// generators (TPC-H, JOB, XueTang schemas at micro scale), an LSTM
// actor–critic trained with potential-shaped execution feedback, a
// meta-critic for fast adaptation to new constraints (§6), and the
// SQLSmith-style and template-based baselines used in the paper's
// evaluation.
//
// # Throughput options
//
// Episode rollouts are embarrassingly parallel between gradient updates,
// and repeated partial queries dominate estimator cost, so Options
// exposes five throughput knobs:
//
//   - Options.Workers sets the number of concurrent rollout goroutines
//     per training batch (default 1, i.e. serial). Each episode owns its
//     own RNG stream fanned out deterministically from Options.Seed, so
//     generated queries and learning traces are byte-identical for every
//     Workers value — set it to runtime.GOMAXPROCS(0) freely.
//   - Options.Shards trains N data-parallel trainer shards ("fleet
//     training"): each shard owns a cloned environment and a full
//     per-shard episode slice, and the shards exchange weights once per
//     epoch by synchronous all-reduce parameter averaging (with linear
//     learning-rate scaling). Per-shard episode streams fan out
//     deterministically from Options.Seed, so Shards <= 1 is
//     byte-identical to the single trainer and a sharded run replays
//     byte-identically for a given seed; a crashed or quarantined shard
//     is refilled from the last-good checkpoint. See the "Fleet
//     training" section of ARCHITECTURE.md for the topology, seed
//     fan-out, and refill protocol.
//   - Options.EstimatorCacheSize bounds the LRU cache memoizing the
//     cardinality/cost estimator across episodes (default 65536 entries;
//     negative disables it). Estimation is a pure function of the
//     statement, so cached feedback is exact.
//   - Options.PrefixCacheSize bounds the per-batch trie memoizing the
//     actor's recurrent state by token prefix during generation (default
//     4096 entries; negative disables it). Between gradient updates the
//     policy is frozen, so episodes sharing a prefix skip recomputing its
//     LSTM steps; generated queries are identical either way.
//   - Options.QuantizedInference rolls generation batches through int8
//     fused inference kernels while training stays float64. Each batch
//     re-snapshots the live weights, so the quantized view can never go
//     stale; logits track the float64 path within a documented tolerance
//     (nn.QuantMaxLogitError / nn.QuantMinTopKAgreement), so individual
//     sampled queries can differ where the policy was near-indifferent.
//     Measured speedups are committed in BENCH_nn.json / BENCH_rl.json
//     (regenerate with `make bench`; see EXPERIMENTS.md).
//
// Generator.Stats (and the MetaGenerator/AdaptedGenerator equivalents)
// reports episodes/sec and both caches' hit/miss counters.
//
// # Lifecycle control
//
// Every training and generation method has a Context variant that stops
// at the next episode boundary when the context is done, returning the
// work completed so far plus the cause. Interrupted training keeps the
// weights of its last completed batch update, so the generator can be
// saved, used, or trained further:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
//	defer cancel()
//	trace, err := gen.TrainContext(ctx, 250, 25) // err wraps the cause if cut short
//	fmt.Printf("completed %d epochs\n", len(trace))
//
// Options.TrainBudget caps total training wall-clock without manual
// context plumbing (expiry is reported as ErrBudgetExceeded, so
// errors.Is distinguishes it from a caller cancel), and Options.OnEpoch
// streams per-epoch stats — returning an error from it aborts training
// with an *EpochAbortError.
//
// # Fault tolerance
//
// Long training runs survive infrastructure faults instead of crashing:
//
//   - Options.Resilience wraps the estimator/executor backends with
//     retries (exponential backoff + jitter) and a circuit breaker;
//     transient faults are healed invisibly and counted in
//     Generator.Stats (Retries, Exhausted, BreakerOpens).
//   - A panic inside one rollout episode is quarantined — counted,
//     logged with its token trace, the batch refilled — rather than
//     crashing training (Stats.Quarantined).
//   - Options.MaxGradNorm arms the divergence watchdog: a batch with
//     non-finite or exploding gradients is discarded, and a non-finite
//     weight after a step rolls back to the last healthy update
//     (Stats.WatchdogTrips). Zero selects the default ceiling; negative
//     disables.
//   - Generator.Save and WriteWorkloadFile write atomically (temp file,
//     fsync, rename) in a CRC-framed format, so a crash never leaves a
//     torn file and corruption is detected at load. OpenCheckpointStore
//     adds rotated, sequence-numbered checkpoints with a last-good
//     manifest: CheckpointStore.Load falls back past corrupt or missing
//     entries to the newest loadable one (ErrNoCheckpoint when none is).
//   - Options.FaultInjection injects deterministic, seedable faults
//     (transient errors, latency spikes, panics, NaN results) into the
//     backends for chaos testing; `make chaos` runs the full suite under
//     the race detector.
//
// # Engine drivers
//
// Options.Engine routes reward measurement through a pluggable engine
// driver instead of calling the in-tree estimator/executor directly.
// Three drivers ship in-tree: "reference" (the same engine behind the
// driver interface; empty Options.DSN shares the opened dataset),
// "inprocess" (the same engine reached through a real database/sql
// driver — SQL out as text, EXPLAIN plans and rows back, exercising the
// exact code path an external engine takes), and "sql" (a generic
// database/sql adapter with per-engine dialect rendering — postgres,
// mysql, sqlite, ansi — EXPLAIN-based estimates and a COUNT(*)
// fallback). The resilience and fault-injection layers wrap the driver
// exactly as they wrap the default backends, DB.EngineStats exposes the
// driver's call counters, and DB.Close releases it:
//
//	db, _ := learnedsqlgen.OpenBenchmark("tpch", 0.05, &learnedsqlgen.Options{Engine: "inprocess"})
//	defer db.Close()
//
// DB.CrossCheck (and `sqlgen -cross-check`) extends the conformance
// sweep below with a cross-engine differential oracle: every produced
// statement is rendered per dialect (and must read back identically),
// executed and estimated on each engine, with exact cardinality
// agreement demanded on shared data and per-engine q-error
// distributions in the report.
//
// # Generation as a service
//
// The `sqlgen serve` subcommand runs the stack as a long-running,
// multi-tenant generation service: clients dial a framed TCP protocol
// (internal/wire), name a dataset and a constraint, and satisfied
// queries stream back as they are found. Generators are served from a
// warm model registry keyed by (dataset fingerprint, constraint
// domain): each entry is a pre-trained meta-critic whose nearest task
// actor serves requests frozen — no per-request retraining — with
// ref-counting, LRU eviction under a memory budget, and rotated
// checkpoints so a restarted server warm-starts the same entries.
// Request streams derive deterministically from the session's Hello
// seed, so a streamed workload is reproducible by construction, and
// SIGTERM drains gracefully (in-flight streams finish within the drain
// timeout, then the registry state is checkpointed). The Go client
// lives in the learnedsqlgen/client package:
//
//	conn, _ := client.Dial("127.0.0.1:7878", &client.Config{Seed: 42})
//	defer conn.Close()
//	stream, _ := conn.Generate(ctx, client.Request{
//	    Dataset: "tpch", Metric: "cardinality", IsRange: true, Lo: 100, Hi: 400, N: 10,
//	})
//	for stream.Next() {
//	    fmt.Println(stream.Row().SQL)
//	}
//
// The service carries a full protection layer for hostile or overloaded
// deployments. `-tokens name=token,...` turns on per-session auth
// (tokenless dials are refused with the stable `unauthenticated` code);
// the `-tenant-rate`, `-tenant-burst`, `-tenant-streams`,
// `-tenant-attempts` and `-tenant-window` flags set the default
// per-tenant quotas — a token-bucket admission rate, a concurrent-stream
// cap, and a rolling sampler-attempt budget charged by compute actually
// burned; `-max-sessions`/`-max-streams` shed server-wide overload with
// a retryable `overloaded` refusal and a retry-after hint;
// `-idle-timeout` reaps silent sessions; `-request-timeout` caps every
// request's deadline (clients can send a tighter one via
// Request.Deadline). Every refusal is an Error frame with a stable code
// and a retryable flag; client.Config.Retry makes the Go client re-issue
// retryable refusals transparently with backoff, reusing the same
// request id so the retried stream is byte-identical. See the
// "Admission control & tenancy" section of ARCHITECTURE.md for the
// error-code table, quota semantics, and the isolation guarantees the
// internal/netchaos harness enforces.
//
// DB.Close participates in the same lifecycle discipline: it cancels
// in-flight training/generation streams (their errors wrap ErrDBClosed),
// waits for them to drain, and only then releases the engine driver.
//
// # Conformance self-test
//
// DB.SelfTest sweeps four query producers (raw FSM walk, the random and
// template baselines, an RL policy sampler) through the conformance
// oracle: every emitted statement must parse and round-trip, replay
// through the FSM without hitting a masked transition, execute and
// estimate without impossible results, and satisfy metamorphic
// properties (adding an AND conjunct never raises true cardinality;
// reported measurements match fresh ones; reruns are byte-identical,
// including with the prefix cache disabled). The same sweep is exposed
// as `sqlgen -selftest`, and `make fuzz` drives the underlying fuzz
// targets (FuzzParse, FuzzFSMWalk, FuzzOracle) from checked-in corpora:
//
//	rep, err := db.SelfTest(ctx, learnedsqlgen.RangeConstraint(learnedsqlgen.Cardinality, 1, 1000), 250)
//	if err == nil && !rep.Ok() { fmt.Print(rep) } // violations, if any
//
// See ARCHITECTURE.md for the package map and dataflow, DESIGN.md for
// design decisions, and EXPERIMENTS.md for the reproduced figures.
package learnedsqlgen
