package client_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"learnedsqlgen/client"
	"learnedsqlgen/internal/service"
)

// startServer runs a tiny generation service on loopback.
func startServer(t *testing.T) string {
	t.Helper()
	srv, err := service.New(service.Config{
		Datasets:     []service.DatasetSpec{{Name: "xuetang", Scale: 0.05}},
		Seed:         1,
		SampleValues: 10,
		K:            2,
		WarmRounds:   1,
		WarmEpisodes: 4,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v after drain", err)
		}
	})
	return ln.Addr().String()
}

func drain(t *testing.T, st *client.Stream) []client.Row {
	t.Helper()
	var rows []client.Row
	for st.Next() {
		rows = append(rows, st.Row())
	}
	if err := st.Err(); err != nil {
		t.Errorf("stream error: %v", err)
	}
	return rows
}

// TestConcurrentStreamsDoNotInterleave is the demux regression: two
// Generate requests in flight on ONE connection, consumed from separate
// goroutines, must each receive exactly their own rows. Before the
// per-id demux, whichever stream read the socket first would steal (or
// drop) frames belonging to the other.
func TestConcurrentStreamsDoNotInterleave(t *testing.T) {
	addr := startServer(t)
	conn, err := client.Dial(addr, &client.Config{Seed: 42})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	reqs := []client.Request{
		{Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 3, MaxAttempts: 2000},
		{Metric: "cost", IsRange: true, Lo: 1, Hi: 1e9, N: 3, MaxAttempts: 2000},
	}
	// Open both streams before consuming either: both are in flight on the
	// same connection, so the server interleaves their Row frames.
	streams := make([]*client.Stream, len(reqs))
	for i, req := range reqs {
		st, err := conn.Generate(context.Background(), req)
		if err != nil {
			t.Fatalf("generate %d: %v", i, err)
		}
		streams[i] = st
	}
	results := make([][]client.Row, len(reqs))
	var wg sync.WaitGroup
	for i, st := range streams {
		wg.Add(1)
		go func(i int, st *client.Stream) {
			defer wg.Done()
			results[i] = drain(t, st)
		}(i, st)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, rows := range results {
		if len(rows) < reqs[i].N {
			t.Fatalf("stream %d got %d rows, want >= %d", i, len(rows), reqs[i].N)
		}
		if found, _, canceled := streams[i].Stats(); canceled || found != len(rows) {
			t.Fatalf("stream %d stats: found %d, canceled %v, rows %d", i, found, canceled, len(rows))
		}
	}

	// Sequential replays of each request on fresh connections are the
	// ground truth: the concurrent run must have routed every row to the
	// right stream (and the streams are deterministic in the request id,
	// so opening order here mirrors the concurrent run).
	truth, err := client.Dial(addr, &client.Config{Seed: 42})
	if err != nil {
		t.Fatalf("replay dial: %v", err)
	}
	defer truth.Close()
	for i, req := range reqs {
		st, err := truth.Generate(context.Background(), req)
		if err != nil {
			t.Fatalf("replay generate %d: %v", i, err)
		}
		want := drain(t, st)
		if len(want) != len(results[i]) {
			t.Fatalf("stream %d: concurrent run %d rows, sequential truth %d", i, len(results[i]), len(want))
		}
		for j := range want {
			if results[i][j] != want[j] {
				t.Fatalf("stream %d row %d routed wrong:\nconcurrent: %+v\nsequential: %+v", i, j, results[i][j], want[j])
			}
		}
	}
}

// TestManyStreamsOneConnection stress-routes a batch of concurrent
// streams over one connection under -race; every stream must finish
// uncanceled with its own satisfied rows.
func TestManyStreamsOneConnection(t *testing.T) {
	addr := startServer(t)
	conn, err := client.Dial(addr, &client.Config{Seed: 7})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	const streams = 6
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := conn.Generate(context.Background(), client.Request{
				Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000,
				N: 2, MaxAttempts: 2000,
			})
			if err != nil {
				t.Errorf("generate %d: %v", i, err)
				return
			}
			rows := drain(t, st)
			if len(rows) < 2 {
				t.Errorf("stream %d got %d rows, want 2", i, len(rows))
			}
		}(i)
	}
	wg.Wait()
}

// TestStreamErrorsAreRoutedById: a request-level server error must end
// only its own stream; an unrelated in-flight stream on the same
// connection keeps streaming to a clean Done.
func TestStreamErrorsAreRoutedById(t *testing.T) {
	addr := startServer(t)
	conn, err := client.Dial(addr, &client.Config{Seed: 3})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	good, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 2, MaxAttempts: 2000,
	})
	if err != nil {
		t.Fatalf("generate good: %v", err)
	}
	bad, err := conn.Generate(context.Background(), client.Request{
		Dataset: "nope", Metric: "cardinality", IsRange: true, Lo: 1, Hi: 10, N: 1,
	})
	if err != nil {
		t.Fatalf("generate bad: %v", err)
	}
	if bad.Next() {
		t.Fatal("unknown-dataset request streamed a row")
	}
	if bad.Err() == nil {
		t.Fatal("unknown-dataset request ended without error")
	}
	rows := drain(t, good)
	if len(rows) < 2 {
		t.Fatalf("healthy stream got %d rows, want 2 (killed by its neighbor's error?)", len(rows))
	}
}

// TestConnCloseFailsInFlightStreams: closing the connection ends every
// in-flight stream with an error instead of hanging its consumer.
func TestConnCloseFailsInFlightStreams(t *testing.T) {
	addr := startServer(t)
	conn, err := client.Dial(addr, &client.Config{Seed: 9})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1 << 30, MaxAttempts: 1 << 30,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if !st.Next() {
		t.Fatalf("no first row: %v", st.Err())
	}
	conn.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for st.Next() {
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream consumer hung after Close")
	}
	if st.Err() == nil {
		t.Fatal("in-flight stream ended without error after Close")
	}
}
