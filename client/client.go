// Package client is the Go client for the learnedsqlgen generation
// service (internal/service, `sqlgen serve`): dial, handshake, then
// stream constraint-satisfying queries row by row.
//
//	conn, err := client.Dial(addr, &client.Config{Seed: 42})
//	defer conn.Close()
//	stream, err := conn.Generate(ctx, client.Request{
//		Dataset: "xuetang", Metric: "cardinality",
//		IsRange: true, Lo: 1, Hi: 1000, N: 5,
//	})
//	for stream.Next() {
//		fmt.Println(stream.Row().SQL)
//	}
//	err = stream.Err()
//
// The Hello seed keys the session's deterministic stream fan-out: the
// same seed and the same request sequence replay byte-identical queries,
// so a workload streamed from a server is reproducible by construction.
// A Conn carries one request stream at a time (the protocol itself
// multiplexes by request id; this client keeps the simple form).
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"learnedsqlgen/internal/wire"
)

// Config tunes Dial. The zero value (or nil) is usable.
type Config struct {
	// Seed keys the session's deterministic generation streams.
	Seed int64
	// Name identifies the client in the server's Hello handling
	// (diagnostics only).
	Name string
	// DialTimeout bounds connection establishment (default 10s); it also
	// bounds the handshake round-trip.
	DialTimeout time.Duration
}

// Request asks for N satisfied queries under one constraint.
type Request struct {
	// Dataset names the benchmark; empty selects the server's only open
	// dataset when there is exactly one.
	Dataset string
	// Metric is "cardinality" or "cost".
	Metric string
	// IsRange selects Lo/Hi; otherwise Point (with the paper's 10%
	// tolerance).
	IsRange bool
	Point   float64
	Lo, Hi  float64
	// N is the number of satisfied queries wanted; MaxAttempts caps the
	// search (0 selects the server default).
	N           int
	MaxAttempts int
}

// Row is one streamed satisfied query.
type Row struct {
	SQL       string
	Measured  float64
	Satisfied bool
}

// Conn is one client session.
type Conn struct {
	conn      net.Conn
	maxFrame  int
	sessionID uint64
	datasets  []string
	seed      int64
	nextID    uint64
	inflight  *Stream
	closed    bool
}

// Dial connects, performs the Hello/Welcome handshake, and returns the
// ready session.
func Dial(addr string, cfg *Config) (*Conn, error) {
	if cfg == nil {
		cfg = &Config{}
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{conn: nc, seed: cfg.Seed}
	nc.SetDeadline(time.Now().Add(timeout))
	name := cfg.Name
	if name == "" {
		name = "learnedsqlgen/client"
	}
	if err := wire.WriteMessage(nc, &wire.Hello{Version: wire.Version, Client: name, Seed: cfg.Seed}); err != nil {
		nc.Close()
		return nil, err
	}
	msg, err := wire.ReadMessage(nc, c.maxFrame)
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch m := msg.(type) {
	case *wire.Welcome:
		c.sessionID = m.SessionID
		c.datasets = m.Datasets
	case *wire.Error:
		nc.Close()
		return nil, fmt.Errorf("client: server refused session: %s", m.Msg)
	default:
		nc.Close()
		return nil, fmt.Errorf("client: expected Welcome, got %T", msg)
	}
	nc.SetDeadline(time.Time{})
	return c, nil
}

// SessionID is the server-assigned session id.
func (c *Conn) SessionID() uint64 { return c.sessionID }

// Datasets lists the datasets the server is serving.
func (c *Conn) Datasets() []string { return append([]string(nil), c.datasets...) }

// Seed echoes the session seed sent in Hello.
func (c *Conn) Seed() int64 { return c.seed }

// Close sends Goodbye and closes the connection. Safe after errors.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	wire.WriteMessage(c.conn, &wire.Goodbye{}) // best-effort
	return c.conn.Close()
}

// ErrStreamInFlight is returned by Generate while a previous stream has
// not been consumed to completion.
var ErrStreamInFlight = errors.New("client: a stream is already in flight on this connection")

// Generate sends one request and returns its row stream. Cancelling ctx
// sends a Cancel frame; the stream then ends with ctx's error after the
// server's Done{Canceled} arrives. Only one stream may be in flight per
// Conn — consume it (Next until false) before the next Generate.
func (c *Conn) Generate(ctx context.Context, req Request) (*Stream, error) {
	if c.closed {
		return nil, errors.New("client: connection closed")
	}
	if c.inflight != nil && !c.inflight.done {
		return nil, ErrStreamInFlight
	}
	c.nextID++
	id := c.nextID
	g := &wire.Generate{
		ID: id, Dataset: req.Dataset, Metric: req.Metric,
		IsRange: req.IsRange, Point: req.Point, Lo: req.Lo, Hi: req.Hi,
		N: req.N, MaxAttempts: req.MaxAttempts,
	}
	if err := wire.WriteMessage(c.conn, g); err != nil {
		return nil, err
	}
	st := &Stream{conn: c, id: id, ctx: ctx, cancelSent: make(chan struct{})}
	if ctx != nil && ctx.Done() != nil {
		st.stopWatch = make(chan struct{})
		go st.watchCancel()
	}
	c.inflight = st
	return st, nil
}

// Stream is one request's row stream. Not safe for concurrent use.
type Stream struct {
	conn *Conn
	id   uint64
	ctx  context.Context

	cur  Row
	err  error
	done bool

	found, attempts int
	canceled        bool
	lastProgress    wire.Progress

	stopWatch  chan struct{}
	cancelSent chan struct{}
}

// watchCancel forwards ctx cancellation as a Cancel frame.
func (st *Stream) watchCancel() {
	select {
	case <-st.ctx.Done():
		st.conn.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		wire.WriteMessage(st.conn.conn, &wire.Cancel{ID: st.id})
		close(st.cancelSent)
	case <-st.stopWatch:
	}
}

// Next advances to the next row. It returns false when the stream ends —
// then Err reports how (nil for a completed request, the cancellation
// cause, or the transport/server error).
func (st *Stream) Next() bool {
	if st.done {
		return false
	}
	for {
		msg, err := wire.ReadMessage(st.conn.conn, st.conn.maxFrame)
		if err != nil {
			st.finish(err)
			return false
		}
		switch m := msg.(type) {
		case *wire.Row:
			if m.ID != st.id {
				continue // stale frame from an abandoned request
			}
			st.cur = Row{SQL: m.SQL, Measured: m.Measured, Satisfied: m.Satisfied}
			return true
		case *wire.Progress:
			if m.ID == st.id {
				st.lastProgress = *m
			}
		case *wire.Done:
			if m.ID != st.id {
				continue
			}
			st.found, st.attempts, st.canceled = m.Found, m.Attempts, m.Canceled
			var err error
			if m.Canceled && st.ctx != nil && st.ctx.Err() != nil {
				err = context.Cause(st.ctx)
			}
			st.finish(err)
			return false
		case *wire.Error:
			if m.ID != 0 && m.ID != st.id {
				continue
			}
			st.finish(fmt.Errorf("client: server error: %s", m.Msg))
			return false
		default:
			st.finish(fmt.Errorf("client: unexpected %T frame mid-stream", msg))
			return false
		}
	}
}

// finish seals the stream.
func (st *Stream) finish(err error) {
	st.err = err
	st.done = true
	if st.stopWatch != nil {
		select {
		case <-st.cancelSent: // watcher already fired; let it exit
		default:
			close(st.stopWatch)
		}
		st.stopWatch = nil
	}
}

// Row returns the current row after a true Next.
func (st *Stream) Row() Row { return st.cur }

// Err reports why the stream ended; nil means the request ran to Done
// without cancellation.
func (st *Stream) Err() error { return st.err }

// Stats reports the request's final accounting (valid after Next
// returned false): satisfied queries found, episodes attempted, and
// whether the stream was cut short.
func (st *Stream) Stats() (found, attempts int, canceled bool) {
	return st.found, st.attempts, st.canceled
}

// Progress reports the most recent Progress frame's counters — liveness
// for long searches.
func (st *Stream) Progress() (attempts, found int) {
	return st.lastProgress.Attempts, st.lastProgress.Found
}
