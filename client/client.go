// Package client is the Go client for the learnedsqlgen generation
// service (internal/service, `sqlgen serve`): dial, handshake, then
// stream constraint-satisfying queries row by row.
//
//	conn, err := client.Dial(addr, &client.Config{Seed: 42})
//	defer conn.Close()
//	stream, err := conn.Generate(ctx, client.Request{
//		Dataset: "xuetang", Metric: "cardinality",
//		IsRange: true, Lo: 1, Hi: 1000, N: 5,
//	})
//	for stream.Next() {
//		fmt.Println(stream.Row().SQL)
//	}
//	err = stream.Err()
//
// The Hello seed keys the session's deterministic stream fan-out: the
// same seed and the same request sequence replay byte-identical queries,
// so a workload streamed from a server is reproducible by construction.
//
// A Conn multiplexes: any number of Generate streams may be in flight at
// once. A background read loop demultiplexes server frames by request id
// into per-stream queues, so two concurrent streams never steal each
// other's rows — each Stream remains single-consumer, but different
// Streams may be consumed from different goroutines.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"learnedsqlgen/internal/resilience"
	"learnedsqlgen/internal/wire"
)

// Config tunes Dial. The zero value (or nil) is usable.
type Config struct {
	// Seed keys the session's deterministic generation streams.
	Seed int64
	// Name identifies the client in the server's Hello handling
	// (diagnostics only).
	Name string
	// Token authenticates the session when the server has tenants
	// configured; servers without auth ignore it.
	Token string
	// DialTimeout bounds connection establishment (default 10s); it also
	// bounds the handshake round-trip.
	DialTimeout time.Duration
	// Retry, when non-nil, re-issues requests that the server refused or
	// cut short with a retryable coded error (quota_exceeded, overloaded,
	// draining) after an exponential backoff, as long as the stream has
	// delivered no rows yet — a retried request reuses its id, so the
	// server's seed fan-out replays the exact same row stream the
	// original would have produced. nil disables retry.
	Retry *RetryConfig
}

// RetryConfig shapes the client's retry backoff. Zero fields take the
// shared resilience defaults (4 attempts, 1ms base, 100ms cap, 2x
// growth, 50% jitter).
type RetryConfig struct {
	// MaxAttempts is the total tries per request, the first included.
	MaxAttempts int
	// BaseDelay / MaxDelay / Multiplier / Jitter shape the backoff
	// exactly as resilience.Policy.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	Jitter     float64
	// Seed seeds the jitter RNG (default: the session seed).
	Seed int64
}

func (rc *RetryConfig) policy() resilience.Policy {
	p := resilience.Policy{
		MaxAttempts: rc.MaxAttempts,
		BaseDelay:   rc.BaseDelay,
		MaxDelay:    rc.MaxDelay,
		Multiplier:  rc.Multiplier,
		Jitter:      rc.Jitter,
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	return p
}

// ServerError is a coded refusal or stream failure from the server.
// Errors returned by Dial, Generate and Stream.Err unwrap to it, so
// callers can switch on Code:
//
//	var se *client.ServerError
//	if errors.As(st.Err(), &se) && se.Code == wire.CodeQuotaExceeded { ... }
type ServerError struct {
	// Code is the stable machine-readable cause (wire.Code*); empty on
	// errors from servers predating coded errors.
	Code string
	// Msg is the server's human-readable message.
	Msg string
	// RetryAfter is the server's backoff hint, when it sent one.
	RetryAfter time.Duration
	retryable  bool
}

func newServerError(m *wire.Error) *ServerError {
	return &ServerError{
		Code:       m.Code,
		Msg:        m.Msg,
		RetryAfter: time.Duration(m.RetryAfterMillis) * time.Millisecond,
		retryable:  m.Retryable || wire.RetryableCode(m.Code),
	}
}

func (e *ServerError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("client: server error (%s): %s", e.Code, e.Msg)
	}
	return fmt.Sprintf("client: server error: %s", e.Msg)
}

// Retryable reports whether re-issuing the request may succeed.
func (e *ServerError) Retryable() bool { return e.retryable }

// Transient aliases Retryable so resilience.Classify treats retryable
// refusals as transient faults.
func (e *ServerError) Transient() bool { return e.retryable }

// Request asks for N satisfied queries under one constraint.
type Request struct {
	// Dataset names the benchmark; empty selects the server's only open
	// dataset when there is exactly one.
	Dataset string
	// Metric is "cardinality" or "cost".
	Metric string
	// IsRange selects Lo/Hi; otherwise Point (with the paper's 10%
	// tolerance).
	IsRange bool
	Point   float64
	Lo, Hi  float64
	// N is the number of satisfied queries wanted; MaxAttempts caps the
	// search (0 selects the server default).
	N           int
	MaxAttempts int
	// Deadline bounds the request's wall clock server-side (clamped to
	// the server's maximum). Zero derives it from the Generate context's
	// deadline when one is set; negative sends none.
	Deadline time.Duration
}

// Row is one streamed satisfied query.
type Row struct {
	SQL       string
	Measured  float64
	Satisfied bool
}

// Conn is one client session. Safe for concurrent use: Generate may be
// called from multiple goroutines and every returned Stream consumed
// independently.
type Conn struct {
	conn      net.Conn
	rd        *wire.Reader // read loop's reusable framed reader
	maxFrame  int
	sessionID uint64
	version   int // negotiated protocol version from Welcome
	datasets  []string
	seed      int64

	retry *resilience.Policy // nil: no request retry
	rngMu sync.Mutex
	rng   *rand.Rand // jitter draws for retry backoff

	wmu sync.Mutex // serializes whole request frames onto conn

	mu      sync.Mutex
	nextID  uint64
	streams map[uint64]*Stream // in-flight, by request id
	closed  bool
}

// Dial connects, performs the Hello/Welcome handshake, starts the demux
// read loop, and returns the ready session.
func Dial(addr string, cfg *Config) (*Conn, error) {
	if cfg == nil {
		cfg = &Config{}
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{conn: nc, seed: cfg.Seed, streams: map[uint64]*Stream{}}
	c.rd = wire.NewReader(nc, c.maxFrame)
	if cfg.Retry != nil {
		pol := cfg.Retry.policy()
		c.retry = &pol
		jseed := cfg.Retry.Seed
		if jseed == 0 {
			jseed = cfg.Seed
		}
		c.rng = rand.New(rand.NewSource(jseed))
	}
	nc.SetDeadline(time.Now().Add(timeout))
	name := cfg.Name
	if name == "" {
		name = "learnedsqlgen/client"
	}
	if err := wire.WriteMessage(nc, &wire.Hello{Version: wire.Version, Client: name, Seed: cfg.Seed, Token: cfg.Token}); err != nil {
		nc.Close()
		return nil, err
	}
	msg, err := c.rd.ReadMessage()
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch m := msg.(type) {
	case *wire.Welcome:
		c.sessionID = m.SessionID
		c.version = m.Version
		c.datasets = m.Datasets
	case *wire.Error:
		nc.Close()
		return nil, fmt.Errorf("client: server refused session: %w", newServerError(m))
	default:
		nc.Close()
		return nil, fmt.Errorf("client: expected Welcome, got %T", msg)
	}
	nc.SetDeadline(time.Time{})
	go c.readLoop()
	return c, nil
}

// Version is the protocol version the server negotiated in Welcome.
func (c *Conn) Version() int { return c.version }

// SessionID is the server-assigned session id.
func (c *Conn) SessionID() uint64 { return c.sessionID }

// Datasets lists the datasets the server is serving.
func (c *Conn) Datasets() []string { return append([]string(nil), c.datasets...) }

// Seed echoes the session seed sent in Hello.
func (c *Conn) Seed() int64 { return c.seed }

// Close sends Goodbye and closes the connection; in-flight streams end
// with a connection error. Safe after errors and safe to call twice.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.wmu.Lock()
	c.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	wire.WriteMessage(c.conn, &wire.Goodbye{}) // best-effort
	c.wmu.Unlock()
	return c.conn.Close()
}

// send serializes one frame onto the connection (whole frames only — one
// Write call inside wire.WriteMessage — so concurrent Generate and Cancel
// frames never interleave bytes).
func (c *Conn) send(m wire.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	return wire.WriteMessage(c.conn, m)
}

// readLoop is the connection's only reader: it demultiplexes every server
// frame to its stream's queue by request id. On a connection error (or a
// session-level Error frame) every in-flight stream is failed and the
// loop exits; frames for unknown ids — streams already retired — are
// dropped.
func (c *Conn) readLoop() {
	for {
		msg, err := c.rd.ReadMessage()
		if err != nil {
			c.failAll(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		var id uint64
		switch m := msg.(type) {
		case *wire.Row:
			id = m.ID
		case *wire.Progress:
			id = m.ID
		case *wire.Done:
			id = m.ID
		case *wire.Error:
			if m.ID == 0 {
				c.failAll(fmt.Errorf("client: session failed: %w", newServerError(m)))
				return
			}
			id = m.ID
		default:
			c.failAll(fmt.Errorf("client: unexpected %T frame mid-stream", msg))
			return
		}
		c.mu.Lock()
		st := c.streams[id]
		c.mu.Unlock()
		if st != nil {
			st.deliver(msg)
		}
	}
}

// failAll seals every in-flight stream with err.
func (c *Conn) failAll(err error) {
	c.mu.Lock()
	streams := make([]*Stream, 0, len(c.streams))
	for _, st := range c.streams {
		streams = append(streams, st)
	}
	c.streams = map[uint64]*Stream{}
	c.mu.Unlock()
	for _, st := range streams {
		st.fail(err)
	}
}

// retire forgets an ended stream's id (its queue is sealed).
func (c *Conn) retire(id uint64) {
	c.mu.Lock()
	delete(c.streams, id)
	c.mu.Unlock()
}

// ErrStreamInFlight is a historical error: older clients allowed only one
// stream per connection and returned this from Generate. The connection
// now demultiplexes concurrent streams by request id, so Generate no
// longer returns it. Kept exported for compatibility.
var ErrStreamInFlight = errors.New("client: a stream is already in flight on this connection")

// Generate sends one request and returns its row stream. Cancelling ctx
// sends a Cancel frame; the stream then ends with ctx's error after the
// server's Done{Canceled} arrives. Streams multiplex: any number may be
// in flight on one Conn, each consumed independently (a single Stream
// remains single-consumer).
func (c *Conn) Generate(ctx context.Context, req Request) (*Stream, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("client: connection closed")
	}
	c.nextID++
	id := c.nextID
	st := &Stream{conn: c, id: id, ctx: ctx, cancelSent: make(chan struct{})}
	st.cond = sync.NewCond(&st.qmu)
	c.streams[id] = st
	c.mu.Unlock()

	deadline := req.Deadline
	if deadline == 0 && ctx != nil {
		if until, ok := ctx.Deadline(); ok {
			deadline = time.Until(until)
		}
	}
	g := &wire.Generate{
		ID: id, Dataset: req.Dataset, Metric: req.Metric,
		IsRange: req.IsRange, Point: req.Point, Lo: req.Lo, Hi: req.Hi,
		N: req.N, MaxAttempts: req.MaxAttempts,
	}
	if deadline > 0 {
		g.DeadlineMillis = deadline.Milliseconds()
	}
	st.req = *g
	if err := c.send(g); err != nil {
		c.retire(id)
		return nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		st.stopWatch = make(chan struct{})
		go st.watchCancel()
	}
	return st, nil
}

// Stream is one request's row stream. The consumer side (Next/Row/Err)
// is single-goroutine; different Streams of one Conn may be consumed
// concurrently.
type Stream struct {
	conn *Conn
	id   uint64
	ctx  context.Context
	req  wire.Generate // the frame as sent, re-issued verbatim on retry

	rowsDelivered int // rows the consumer has seen; >0 bars retry
	retries       int // re-issues so far

	// qmu/cond guard the demux hand-off from the connection's read loop.
	qmu     sync.Mutex
	cond    *sync.Cond
	queue   []wire.Message // this stream's frames, in arrival order
	connErr error          // terminal connection error, queue drains first

	cur  Row
	err  error
	done bool

	found, attempts int
	canceled        bool
	lastProgress    wire.Progress

	stopWatch  chan struct{}
	cancelSent chan struct{}
}

// deliver enqueues one frame from the read loop.
func (st *Stream) deliver(m wire.Message) {
	st.qmu.Lock()
	st.queue = append(st.queue, m)
	st.qmu.Unlock()
	st.cond.Signal()
}

// fail seals the queue with a connection error; queued frames still
// drain first.
func (st *Stream) fail(err error) {
	st.qmu.Lock()
	st.connErr = err
	st.qmu.Unlock()
	st.cond.Signal()
}

// nextMsg blocks for this stream's next frame; a nil return means the
// connection died (the error is the second result).
func (st *Stream) nextMsg() (wire.Message, error) {
	st.qmu.Lock()
	defer st.qmu.Unlock()
	for len(st.queue) == 0 && st.connErr == nil {
		st.cond.Wait()
	}
	if len(st.queue) > 0 {
		m := st.queue[0]
		st.queue = st.queue[1:]
		return m, nil
	}
	return nil, st.connErr
}

// watchCancel forwards ctx cancellation as a Cancel frame.
func (st *Stream) watchCancel() {
	select {
	case <-st.ctx.Done():
		st.conn.send(&wire.Cancel{ID: st.id}) //nolint:errcheck // best-effort
		close(st.cancelSent)
	case <-st.stopWatch:
	}
}

// Next advances to the next row. It returns false when the stream ends —
// then Err reports how (nil for a completed request, the cancellation
// cause, or the transport/server error).
func (st *Stream) Next() bool {
	if st.done {
		return false
	}
	for {
		msg, err := st.nextMsg()
		if err != nil {
			st.finish(err)
			return false
		}
		switch m := msg.(type) {
		case *wire.Row:
			st.rowsDelivered++
			st.cur = Row{SQL: m.SQL, Measured: m.Measured, Satisfied: m.Satisfied}
			return true
		case *wire.Progress:
			st.lastProgress = *m
		case *wire.Done:
			st.found, st.attempts, st.canceled = m.Found, m.Attempts, m.Canceled
			var err error
			if m.Canceled && st.ctx != nil && st.ctx.Err() != nil {
				err = context.Cause(st.ctx)
			}
			st.finish(err)
			return false
		case *wire.Error:
			se := newServerError(m)
			if st.maybeRetry(se) {
				continue
			}
			st.finish(se)
			return false
		}
	}
}

// maybeRetry re-issues the request after a retryable refusal. The server
// retires a request id before writing its terminal Error, so re-sending
// the identical Generate frame under the same id is legal — and, because
// the server's stream seed is FanSeed(session seed, id), the retried
// stream replays byte-identical rows. Only streams that have delivered
// nothing retry: after the first row, a retry would restart the stream
// from row one and the consumer would see duplicates.
func (st *Stream) maybeRetry(se *ServerError) bool {
	c := st.conn
	if c.retry == nil || !se.Retryable() || st.rowsDelivered > 0 {
		return false
	}
	if st.retries+1 >= c.retry.MaxAttempts {
		return false
	}
	if st.ctx != nil && st.ctx.Err() != nil {
		return false
	}
	st.retries++
	delay := c.retry.NextDelay(st.retries, c.jitterDraw())
	if se.RetryAfter > delay {
		delay = se.RetryAfter
	}
	if !st.sleep(delay) {
		return false
	}
	if err := c.send(&st.req); err != nil {
		return false // finish with the server error; the conn is dying anyway
	}
	return true
}

// sleep waits d or until the stream's context ends (false on cancel).
func (st *Stream) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	if st.ctx == nil || st.ctx.Done() == nil {
		<-t.C
		return true
	}
	select {
	case <-t.C:
		return true
	case <-st.ctx.Done():
		return false
	}
}

// Retries reports how many times the request was transparently
// re-issued after retryable refusals.
func (st *Stream) Retries() int { return st.retries }

// jitterDraw pulls one uniform [0,1) draw for retry jitter (nominal 0.5
// when retry is unconfigured).
func (c *Conn) jitterDraw() float64 {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.rng == nil {
		return 0.5
	}
	return c.rng.Float64()
}

// finish seals the stream and retires its id.
func (st *Stream) finish(err error) {
	st.err = err
	st.done = true
	st.conn.retire(st.id)
	if st.stopWatch != nil {
		select {
		case <-st.cancelSent: // watcher already fired; let it exit
		default:
			close(st.stopWatch)
		}
		st.stopWatch = nil
	}
}

// Row returns the current row after a true Next.
func (st *Stream) Row() Row { return st.cur }

// Err reports why the stream ended; nil means the request ran to Done
// without cancellation.
func (st *Stream) Err() error { return st.err }

// Stats reports the request's final accounting (valid after Next
// returned false): satisfied queries found, episodes attempted, and
// whether the stream was cut short.
func (st *Stream) Stats() (found, attempts int, canceled bool) {
	return st.found, st.attempts, st.canceled
}

// Progress reports the most recent Progress frame's counters — liveness
// for long searches.
func (st *Stream) Progress() (attempts, found int) {
	return st.lastProgress.Attempts, st.lastProgress.Found
}
