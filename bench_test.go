// Package-level benchmarks: one per table/figure of the paper's
// evaluation (§7). Each benchmark runs a representative slice of its
// figure's grid so that `go test -bench=.` stays tractable on one core;
// the full grids are regenerated with `go run ./cmd/benchfig -fig N`.
// Custom metrics (acc = satisfied fraction, sec = wall time per target
// batch) are reported alongside ns/op.
package learnedsqlgen_test

import (
	"context"
	"testing"

	"learnedsqlgen/internal/bench"
	"learnedsqlgen/internal/meta"
	"learnedsqlgen/internal/rl"
)

// benchBudget sizes the per-figure benchmark slices.
func benchBudget() bench.Budget {
	return bench.Budget{
		NQueries:         100,
		NSatisfied:       10,
		MaxAttempts:      1500,
		TrainEpochs:      250,
		EpisodesPerEpoch: 25,
		Templates:        10,
	}
}

func benchSetup(b *testing.B, dataset string) *bench.Setup {
	b.Helper()
	s, err := bench.NewSetup(dataset, 1.0, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFig4Accuracy reproduces a Figure 4 slice: accuracy under a
// cardinality constraint for SQLSmith, Template and LearnedSQLGen.
func BenchmarkFig4Accuracy(b *testing.B) {
	s := benchSetup(b, "tpch")
	grid := bench.ConstraintGrid{Points: []float64{100}, Ranges: [][2]float64{{100, 400}}}
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAccuracy(context.Background(), s, rl.Cardinality, grid, benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			for m, acc := range r.Acc {
				b.ReportMetric(acc, "acc_"+m+"_"+r.Constraint)
			}
		}
	}
}

// BenchmarkFig5Accuracy reproduces a Figure 5 slice: accuracy under a cost
// constraint.
func BenchmarkFig5Accuracy(b *testing.B) {
	s := benchSetup(b, "tpch")
	grid := bench.ConstraintGrid{Ranges: [][2]float64{{1000, 4000}}}
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAccuracy(context.Background(), s, rl.Cost, grid, benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			for m, acc := range r.Acc {
				b.ReportMetric(acc, "acc_"+m+"_"+r.Constraint)
			}
		}
	}
}

// BenchmarkFig6Efficiency reproduces a Figure 6 slice: seconds to
// NSatisfied queries under a cardinality constraint per method.
func BenchmarkFig6Efficiency(b *testing.B) {
	s := benchSetup(b, "tpch")
	grid := bench.ConstraintGrid{Ranges: [][2]float64{{100, 600}}}
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunEfficiency(context.Background(), s, rl.Cardinality, grid, benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			for m, sec := range r.Seconds {
				b.ReportMetric(sec, "sec_"+m)
			}
		}
	}
}

// BenchmarkFig7Efficiency reproduces a Figure 7 slice: seconds to
// NSatisfied queries under a cost constraint per method.
func BenchmarkFig7Efficiency(b *testing.B) {
	s := benchSetup(b, "xuetang")
	grid := bench.ConstraintGrid{Ranges: [][2]float64{{1000, 2000}}}
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunEfficiency(context.Background(), s, rl.Cost, grid, benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			for m, sec := range r.Seconds {
				b.ReportMetric(sec, "sec_"+m)
			}
		}
	}
}

// BenchmarkFig8RLCompare reproduces Figure 8: actor–critic vs REINFORCE on
// a range constraint (accuracy, time, reward traces).
func BenchmarkFig8RLCompare(b *testing.B) {
	s := benchSetup(b, "job")
	grid := bench.ConstraintGrid{Ranges: [][2]float64{{100, 200}, {100, 400}}}
	budget := benchBudget()
	budget.TrainEpochs = 120 // fixed-epoch comparison, like Fig 8(c)
	for i := 0; i < b.N; i++ {
		res, err := bench.RunRLCompare(context.Background(), s, grid, budget)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			b.ReportMetric(r.Acc["LearnedSQLGen"], "acc_AC_"+r.Constraint)
			b.ReportMetric(r.Acc["REINFORCE"], "acc_RF_"+r.Constraint)
		}
	}
}

// BenchmarkFig9MetaCritic reproduces Figure 9: adaptation to a new
// constraint with Scratch, AC-extend and MetaCritic.
func BenchmarkFig9MetaCritic(b *testing.B) {
	s := benchSetup(b, "xuetang")
	domain := meta.Domain{Metric: rl.Cardinality, Lo: 0, Hi: 1000, K: 5}
	newTasks := []rl.Constraint{rl.RangeConstraint(rl.Cardinality, 350, 450)}
	budget := benchBudget()
	budget.TrainEpochs = 90
	for i := 0; i < b.N; i++ {
		res, err := bench.RunMetaCompare(context.Background(), s, domain, newTasks, budget)
		if err != nil {
			b.Fatal(err)
		}
		for m, sec := range res.Times[0].Seconds {
			b.ReportMetric(sec, "sec_"+m)
		}
		for m, acc := range res.Rows[0].Acc {
			b.ReportMetric(acc, "acc_"+m)
		}
	}
}

// BenchmarkFig10Distribution reproduces Figure 10: the diversity profile
// of 100 generated queries under a cost constraint with the full grammar.
func BenchmarkFig10Distribution(b *testing.B) {
	s := benchSetup(b, "tpch")
	c := rl.PointConstraint(rl.Cost, 10000)
	budget := benchBudget()
	budget.TrainEpochs = 120
	for i := 0; i < b.N; i++ {
		dist, err := bench.RunDistribution(context.Background(), s, c, budget)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dist.NestedFraction, "nested_pct")
		b.ReportMetric(dist.AggregateFraction, "agg_pct")
		b.ReportMetric(dist.SkeletonEntropy, "skeleton_entropy")
	}
}

// BenchmarkFig11Complex reproduces a Figure 11 slice: time to generate M
// satisfied complex statements (nested / insert / delete).
func BenchmarkFig11Complex(b *testing.B) {
	s := benchSetup(b, "tpch")
	c := rl.RangeConstraint(rl.Cost, 1000, 8000)
	budget := benchBudget()
	budget.TrainEpochs = 100
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunComplex(context.Background(), s, c, []int{10}, budget)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Seconds, "sec_"+r.Kind)
		}
	}
}

// BenchmarkFig12SampleSize reproduces a Figure 12 slice: accuracy and time
// versus the per-column value-sample size k.
func BenchmarkFig12SampleSize(b *testing.B) {
	c := rl.RangeConstraint(rl.Cardinality, 100, 400)
	budget := benchBudget()
	budget.TrainEpochs = 150
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunSampleSize(context.Background(), "tpch", 1.0, 1, []int{10, 100}, c, budget)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Accuracy, "acc_k"+itoa(r.SampleK))
			b.ReportMetric(r.Seconds, "sec_k"+itoa(r.SampleK))
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkRewardAblation compares the reward-design variants discussed in
// DESIGN.md on one point constraint (shaped vs paper-literal dense vs
// terminal-only vs no-entropy).
func BenchmarkRewardAblation(b *testing.B) {
	s := benchSetup(b, "tpch")
	c := rl.PointConstraint(rl.Cardinality, 1000)
	budget := benchBudget()
	budget.TrainEpochs = 150
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunRewardAblation(context.Background(), s, c, budget)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Accuracy, "acc_"+r.Variant)
		}
	}
}
